// Unit tests for the common substrate: RNG determinism, statistics,
// angle helpers, link configuration, and contract checking.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>
#include <set>
#include <span>

#include "common/angles.hpp"
#include "common/constants.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/workspace.hpp"

namespace spotfi {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(13);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(s.population_variance()), 3.0, 0.05);
}

TEST(Rng, UniformIndexCoversRangeWithoutOverflow) {
  Rng rng(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto k = rng.uniform_index(5);
    EXPECT_LT(k, 5u);
    seen.insert(k);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIndexRejectsZero) {
  Rng rng(1);
  EXPECT_THROW(rng.uniform_index(0), ContractViolation);
}

TEST(Rng, ForkedStreamsAreIndependent) {
  Rng parent(99);
  Rng a = parent.fork();
  Rng b = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 4);
}

TEST(RunningStats, MeanVarianceMinMax) {
  RunningStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.population_variance(), 1.25);
  EXPECT_NEAR(s.sample_variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_EQ(s.count(), 4u);
}

TEST(RunningStats, EmptySampleThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
  EXPECT_THROW(s.population_variance(), ContractViolation);
  EXPECT_THROW(s.min(), ContractViolation);
}

TEST(Percentile, MedianOfOddAndEvenSamples) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Percentile, EndpointsAndInterpolation) {
  const std::vector<double> v{10.0, 20.0, 30.0, 40.0, 50.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 30.0);
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 20.0);
  EXPECT_DOUBLE_EQ(percentile(v, 80.0), 42.0);
}

TEST(Percentile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 37.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 7.0);
}

TEST(Percentile, RejectsBadArguments) {
  const std::vector<double> v{1.0};
  const std::vector<double> empty;
  EXPECT_THROW(percentile(empty, 50.0), ContractViolation);
  EXPECT_THROW(percentile(v, -1.0), ContractViolation);
  EXPECT_THROW(percentile(v, 101.0), ContractViolation);
}

TEST(Cdf, FullCdfIsMonotone) {
  const std::vector<double> v{5.0, 1.0, 3.0, 2.0, 4.0};
  const auto cdf = empirical_cdf(v);
  ASSERT_EQ(cdf.size(), v.size());
  EXPECT_DOUBLE_EQ(cdf.front().value, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, 5.0);
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
  }
}

TEST(Cdf, DownsampledRejectsTooFewPoints) {
  const std::vector<double> v{1.0, 2.0};
  EXPECT_THROW(empirical_cdf(v, 1), ContractViolation);
}

TEST(Cdf, DownsampledCdfHasRequestedPoints) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(static_cast<double>(i));
  const auto cdf = empirical_cdf(v, 11);
  ASSERT_EQ(cdf.size(), 11u);
  EXPECT_DOUBLE_EQ(cdf.front().probability, 0.0);
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  EXPECT_DOUBLE_EQ(cdf[5].value, 49.5);
}

TEST(Angles, DegRadRoundTrip) {
  EXPECT_DOUBLE_EQ(deg_to_rad(180.0), kPi);
  EXPECT_DOUBLE_EQ(rad_to_deg(kPi / 2.0), 90.0);
  EXPECT_NEAR(rad_to_deg(deg_to_rad(33.25)), 33.25, 1e-12);
}

TEST(Angles, WrapPi) {
  EXPECT_NEAR(wrap_pi(3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(-3.0 * kPi), kPi, 1e-12);
  EXPECT_NEAR(wrap_pi(0.1), 0.1, 1e-12);
  EXPECT_NEAR(wrap_pi(2.0 * kPi + 0.1), 0.1, 1e-12);
}

TEST(Angles, WrapTwoPi) {
  EXPECT_NEAR(wrap_two_pi(-0.1), 2.0 * kPi - 0.1, 1e-12);
  EXPECT_NEAR(wrap_two_pi(2.0 * kPi + 0.2), 0.2, 1e-12);
}

TEST(Angles, AngularDistance) {
  EXPECT_NEAR(angular_distance(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angular_distance(kPi - 0.05, -kPi + 0.05), 0.1, 1e-12);
  EXPECT_NEAR(angular_distance(1.0, 1.0), 0.0, 1e-12);
}

TEST(LinkConfig, Intel5300GridIsCenteredAndEquispaced) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  EXPECT_EQ(link.n_subcarriers, 30u);
  EXPECT_EQ(link.n_antennas, 3u);
  const double lo = link.subcarrier_hz(0);
  const double hi = link.subcarrier_hz(29);
  EXPECT_NEAR((lo + hi) / 2.0, link.carrier_hz, 1.0);
  EXPECT_NEAR(hi - lo, link.reported_span_hz(), 1.0);
  EXPECT_NEAR(link.subcarrier_hz(1) - link.subcarrier_hz(0),
              link.subcarrier_spacing_hz, 1e-6);
}

TEST(LinkConfig, HalfWavelengthSpacing) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  EXPECT_NEAR(link.antenna_spacing_m, link.wavelength() / 2.0, 1e-12);
}

TEST(LinkConfig, TwentyMhzVariantHalvesSpacing) {
  const LinkConfig l40 = LinkConfig::intel5300_40mhz();
  const LinkConfig l20 = LinkConfig::intel5300_20mhz();
  EXPECT_NEAR(l20.subcarrier_spacing_hz, l40.subcarrier_spacing_hz / 2.0,
              1e-6);
  EXPECT_EQ(l20.n_subcarriers, l40.n_subcarriers);
  EXPECT_NEAR(l20.reported_span_hz(), l40.reported_span_hz() / 2.0, 1e-3);
}

TEST(LinkConfig, SubcarrierIndexOutOfRangeThrows) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  EXPECT_THROW(link.subcarrier_hz(30), ContractViolation);
}

TEST(Contracts, ExpectsThrowsWithContext) {
  try {
    SPOTFI_EXPECTS(false, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("common_test"), std::string::npos);
  }
}

TEST(Workspace, CheckoutsAreZeroFilledAndAligned) {
  Workspace ws;
  Workspace::Frame frame(ws);
  const auto d = ws.take<double>(7);
  ASSERT_EQ(d.size(), 7u);
  for (const double v : d) EXPECT_EQ(v, 0.0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d.data()) % Workspace::kAlign,
            0u);
  const auto c = ws.take<std::complex<double>>(3);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c.data()) % Workspace::kAlign,
            0u);
  for (const auto& v : c) EXPECT_EQ(v, std::complex<double>{});
}

TEST(Workspace, FrameRewindReleasesCheckouts) {
  Workspace ws;
  {
    Workspace::Frame frame(ws);
    (void)ws.take<double>(100);
    EXPECT_EQ(ws.stats().used_bytes, 800u);
  }
  EXPECT_EQ(ws.stats().used_bytes, 0u);
  EXPECT_EQ(ws.stats().high_water_bytes, 800u);
  // A frame that dirties memory then rewinds must not leak values into
  // the next checkout at the same address.
  {
    Workspace::Frame frame(ws);
    auto d = ws.take<double>(10);
    for (auto& v : d) v = 42.0;
  }
  {
    Workspace::Frame frame(ws);
    const auto d = ws.take<double>(10);
    for (const double v : d) EXPECT_EQ(v, 0.0);
  }
}

TEST(Workspace, SpansStayValidAcrossGrowth) {
  Workspace ws;
  Workspace::Frame frame(ws);
  auto first = ws.take<double>(8);
  first[0] = 1.25;
  const double* addr = first.data();
  // Force several growth blocks while `first` is outstanding.
  for (int i = 0; i < 8; ++i) {
    (void)ws.take<std::byte>(Workspace::kDefaultBlockBytes);
  }
  EXPECT_EQ(first.data(), addr);
  EXPECT_EQ(first[0], 1.25);
  EXPECT_GE(ws.stats().block_allocations, 2u);
}

TEST(Workspace, ResetCoalescesIntoOneBlock) {
  Workspace ws;
  {
    Workspace::Frame frame(ws);
    for (int i = 0; i < 4; ++i) {
      (void)ws.take<std::byte>(Workspace::kDefaultBlockBytes);
    }
  }
  const WorkspaceStats before = ws.stats();
  ws.reset();
  const WorkspaceStats after = ws.stats();
  EXPECT_EQ(after.capacity_bytes, before.capacity_bytes);
  EXPECT_EQ(after.used_bytes, 0u);
  EXPECT_EQ(after.block_allocations, before.block_allocations + 1);
  // A warmed arena serves the same workload without further heap growth.
  {
    Workspace::Frame frame(ws);
    for (int i = 0; i < 4; ++i) {
      (void)ws.take<std::byte>(Workspace::kDefaultBlockBytes);
    }
  }
  EXPECT_EQ(ws.stats().block_allocations, after.block_allocations);
}

TEST(Workspace, NestedFramePeaksFoldIntoParent) {
  Workspace ws;
  Workspace::Frame outer(ws);
  (void)ws.take<double>(2);  // 16 bytes
  {
    Workspace::Frame inner(ws);
    (void)ws.take<double>(10);  // 80 bytes scratch
    EXPECT_EQ(inner.peak_bytes(), 80u);
  }
  // Parent peak covers its own 16 bytes plus the inner frame's 80, even
  // though the inner scratch has been rewound.
  EXPECT_EQ(outer.peak_bytes(), 96u);
  EXPECT_EQ(ws.stats().used_bytes, 16u);
}

TEST(Workspace, CommitKeepsBytesAlivePastFrame) {
  Workspace ws;
  Workspace::Frame outer(ws);
  std::span<double> kept;
  {
    Workspace::Frame inner(ws);
    kept = ws.take<double>(4);
    kept[0] = 3.5;
    inner.commit();
  }
  (void)ws.take<double>(4);  // must not overlap the committed span
  EXPECT_EQ(kept[0], 3.5);
  EXPECT_EQ(ws.stats().used_bytes, 64u);
}

TEST(Workspace, ResetWithOpenFrameThrows) {
  Workspace ws;
  Workspace::Frame frame(ws);
  (void)ws.take<double>(1);
  EXPECT_THROW(ws.reset(), ContractViolation);
}

TEST(Workspace, ThreadWorkspaceIsStablePerThread) {
  Workspace& a = thread_workspace();
  Workspace& b = thread_workspace();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace spotfi
