// Tests for the waveform substrate: FFT correctness, OFDM numerology,
// LTF construction, packet detection, channel estimation, and — the key
// closing-the-loop property — agreement between waveform-derived CSI and
// the analytic Eq. 1-7 model that the rest of the library synthesizes.
#include <gtest/gtest.h>

#include <cmath>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "csi/regrid.hpp"
#include "music/estimators.hpp"
#include "phy/fft.hpp"
#include "phy/transceiver.hpp"

namespace spotfi {
namespace {

// --- FFT ---

TEST(Fft, MatchesNaiveDftOnRandomInput) {
  Rng rng(1);
  for (const std::size_t n : {2u, 8u, 64u, 128u}) {
    CVector x(n);
    for (auto& v : x) v = cplx(rng.normal(), rng.normal());
    const CVector fast = fft(x);
    const CVector slow = dft_reference(x);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_LT(std::abs(fast[k] - slow[k]), 1e-9 * std::sqrt(n))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Fft, RoundTripIsIdentity) {
  Rng rng(2);
  CVector x(256);
  for (auto& v : x) v = cplx(rng.normal(), rng.normal());
  const CVector back = ifft(fft(x));
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_LT(std::abs(back[k] - x[k]), 1e-12);
  }
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  CVector x(16, cplx{});
  x[0] = cplx(1.0, 0.0);
  const CVector spectrum = fft(x);
  for (const auto& v : spectrum) {
    EXPECT_LT(std::abs(v - cplx(1.0, 0.0)), 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  CVector x(n);
  for (std::size_t t = 0; t < n; ++t) {
    x[t] = std::polar(1.0, 2.0 * kPi * 5.0 * static_cast<double>(t) /
                               static_cast<double>(n));
  }
  const CVector spectrum = fft(x);
  for (std::size_t k = 0; k < n; ++k) {
    if (k == 5) {
      EXPECT_NEAR(std::abs(spectrum[k]), static_cast<double>(n), 1e-9);
    } else {
      EXPECT_LT(std::abs(spectrum[k]), 1e-9);
    }
  }
}

TEST(Fft, NonPowerOfTwoThrows) {
  CVector x(12);
  EXPECT_THROW(fft_in_place(x), ContractViolation);
  CVector empty;
  EXPECT_THROW(fft_in_place(empty), ContractViolation);
}

// --- OFDM ---

TEST(Ofdm, NumerologyMatches5300) {
  const OfdmConfig cfg;
  EXPECT_NEAR(cfg.subcarrier_spacing_hz(), 312.5e3, 1e-6);
  EXPECT_EQ(cfg.symbol_samples(), 160u);
  EXPECT_EQ(cfg.occupied_subcarriers().size(), 116u);  // +-1..58 minus DC
}

TEST(Ofdm, BinMappingWrapsNegatives) {
  const OfdmConfig cfg;
  EXPECT_EQ(cfg.bin_of(1), 1u);
  EXPECT_EQ(cfg.bin_of(-1), 127u);
  EXPECT_EQ(cfg.bin_of(-58), 70u);
  EXPECT_THROW(cfg.bin_of(64), ContractViolation);
}

TEST(Ofdm, LtfSymbolHasUnitPowerAndCyclicPrefix) {
  const OfdmConfig cfg;
  const CVector symbol = ltf_time_symbol(cfg);
  ASSERT_EQ(symbol.size(), cfg.symbol_samples());
  double power = 0.0;
  for (const auto& v : symbol) power += std::norm(v);
  // CP repeats core samples, so total power ~= symbol_samples.
  EXPECT_NEAR(power / static_cast<double>(symbol.size()), 1.0, 0.05);
  // CP equals the core's tail.
  for (std::size_t t = 0; t < cfg.cyclic_prefix; ++t) {
    EXPECT_LT(std::abs(symbol[t] - symbol[t + cfg.fft_size]), 1e-12);
  }
}

TEST(Ofdm, LtfSequenceIsDeterministicPlusMinusOne) {
  const OfdmConfig cfg;
  const auto a = ltf_sequence(cfg);
  const auto b = ltf_sequence(cfg);
  EXPECT_EQ(a, b);
  int plus = 0;
  for (const double v : a) {
    EXPECT_TRUE(v == 1.0 || v == -1.0);
    plus += (v == 1.0);
  }
  // Roughly balanced signs.
  EXPECT_GT(plus, 30);
  EXPECT_LT(plus, static_cast<int>(a.size()) - 30);
}

// --- transceiver ---

PathComponent phy_path(double aoa_deg, double tof_ns, double gain_db,
                       bool direct = true) {
  PathComponent p;
  p.aoa_rad = deg_to_rad(aoa_deg);
  p.tof_s = tof_ns * 1e-9;
  p.gain_db = gain_db;
  p.is_direct = direct;
  return p;
}

TEST(Transceiver, DetectsFrameAtTruePosition) {
  const PhyConfig cfg;
  const PhyFrame frame = transmit_ltf_frame(cfg);
  const auto p = phy_path(0.0, 0.0, 0.0);
  Rng rng(3);
  const CMatrix rx = apply_multipath_channel(
      frame, std::span<const PathComponent>(&p, 1), cfg, rng);
  const PhyCsiResult result = receive_csi(rx, cfg);
  // Zero delay: detection lands on the true frame start (within a couple
  // of samples of correlator ambiguity).
  EXPECT_NEAR(static_cast<double>(result.detected_start),
              static_cast<double>(frame.frame_start), 2.0);
}

TEST(Transceiver, IntegerDelayMovesDetection) {
  PhyConfig cfg;
  cfg.snr_db = 40.0;
  const PhyFrame frame = transmit_ltf_frame(cfg);
  // 1 sample at 40 Msps = 25 ns.
  const auto p = phy_path(0.0, 50.0, 0.0);  // two samples
  Rng rng(4);
  const CMatrix rx = apply_multipath_channel(
      frame, std::span<const PathComponent>(&p, 1), cfg, rng);
  const PhyCsiResult result = receive_csi(rx, cfg);
  EXPECT_NEAR(static_cast<double>(result.detected_start),
              static_cast<double>(frame.frame_start) + 2.0, 2.0);
}

TEST(Transceiver, CsiShapeIs3x30) {
  const PhyConfig cfg;
  const PhyFrame frame = transmit_ltf_frame(cfg);
  const auto p = phy_path(10.0, 30.0, 0.0);
  Rng rng(5);
  const CMatrix rx = apply_multipath_channel(
      frame, std::span<const PathComponent>(&p, 1), cfg, rng);
  const PhyCsiResult result = receive_csi(rx, cfg);
  EXPECT_EQ(result.csi.rows(), 3u);
  EXPECT_EQ(result.csi.cols(), 30u);
}

TEST(Transceiver, NoSignalThrows) {
  const PhyConfig cfg;
  CMatrix silence(3, 1000);
  EXPECT_THROW(receive_csi(silence, cfg), DetectionError);
}

TEST(Transceiver, AntennaPhaseMatchesAoaModel) {
  // Single path at a known AoA: the inter-antenna CSI ratio must equal
  // Phi(theta) from Eq. 1.
  PhyConfig cfg;
  cfg.snr_db = 60.0;
  const PhyFrame frame = transmit_ltf_frame(cfg);
  const double aoa_deg = 35.0;
  const auto p = phy_path(aoa_deg, 0.0, 0.0);
  Rng rng(6);
  const CMatrix rx = apply_multipath_channel(
      frame, std::span<const PathComponent>(&p, 1), cfg, rng);
  const PhyCsiResult result = receive_csi(rx, cfg);
  const double expected = -2.0 * kPi * cfg.link.antenna_spacing_m *
                          std::sin(deg_to_rad(aoa_deg)) *
                          cfg.link.carrier_hz / kSpeedOfLight;
  for (std::size_t n = 0; n < result.csi.cols(); n += 7) {
    const double measured =
        std::arg(result.csi(1, n) / result.csi(0, n));
    EXPECT_NEAR(wrap_pi(measured - expected), 0.0, 0.03) << "n=" << n;
  }
}

TEST(Transceiver, FractionalDelayShowsAsPhaseSlope) {
  // Residual (sub-sample) delay appears as a linear phase across the
  // reported subcarriers — the ToF observable of Sec. 3.1.2.
  PhyConfig cfg;
  cfg.snr_db = 60.0;
  const PhyFrame frame = transmit_ltf_frame(cfg);
  const double tof_ns = 60.0;  // 2.4 samples
  const auto p = phy_path(0.0, tof_ns, 0.0);
  Rng rng(7);
  const CMatrix rx = apply_multipath_channel(
      frame, std::span<const PathComponent>(&p, 1), cfg, rng);
  const PhyCsiResult result = receive_csi(rx, cfg);
  // Detected integer offset absorbs whole samples; the measured slope
  // corresponds to the remaining fractional delay.
  const double detect_delay =
      static_cast<double>(result.detected_start - frame.frame_start) /
      cfg.ofdm.sample_rate_hz;
  const double residual_tof = tof_ns * 1e-9 - detect_delay;
  // Reported grid spacing: 4 bins of 312.5 kHz.
  const double spacing = 4.0 * cfg.ofdm.subcarrier_spacing_hz();
  const double expected_step = -2.0 * kPi * spacing * residual_tof;
  double mean_step = 0.0;
  int count = 0;
  for (std::size_t n = 1; n < result.csi.cols(); ++n) {
    if (n == 15) continue;  // DC gap between -2 and 2 is still 4 bins here
    mean_step += wrap_pi(std::arg(result.csi(0, n) / result.csi(0, n - 1)));
    ++count;
  }
  mean_step /= count;
  EXPECT_NEAR(mean_step, wrap_pi(expected_step), 0.02);
}

TEST(Transceiver, WaveformCsiMatchesAnalyticModelEstimates) {
  // The closing-the-loop fidelity check. The two CSI syntheses use
  // different per-path phase reference conventions (the analytic model
  // references the first subcarrier, the waveform the band center), so a
  // raw entry-wise comparison is only meaningful per path; what must
  // agree is everything an estimator extracts: both CSIs must yield the
  // same multipath (AoA, ToF) estimates up to the detection-delay shift
  // common to all paths.
  PhyConfig cfg;
  cfg.snr_db = 55.0;
  const PhyFrame frame = transmit_ltf_frame(cfg);
  const std::vector<PathComponent> paths{phy_path(20.0, 40.0, 0.0),
                                         phy_path(-45.0, 140.0, -6.0, false)};
  Rng rng(8);
  const CMatrix rx = apply_multipath_channel(frame, paths, cfg, rng);
  const PhyCsiResult result = receive_csi(rx, cfg);

  ImpairmentConfig imp;
  const CsiSynthesizer synth(cfg.link, imp);
  LinkConfig link = cfg.link;
  link.subcarrier_spacing_hz = 4.0 * cfg.ofdm.subcarrier_spacing_hz();
  const CMatrix ideal = synth.ideal_csi(paths);

  const JointMusicEstimator estimator(link);
  auto from_wave = estimator.estimate(result.csi);
  auto from_model = estimator.estimate(ideal);
  ASSERT_EQ(from_wave.size(), 2u);
  ASSERT_EQ(from_model.size(), 2u);
  auto by_aoa = [](const PathEstimate& a, const PathEstimate& b) {
    return a.aoa_rad < b.aoa_rad;
  };
  std::sort(from_wave.begin(), from_wave.end(), by_aoa);
  std::sort(from_model.begin(), from_model.end(), by_aoa);
  for (std::size_t k = 0; k < 2; ++k) {
    EXPECT_NEAR(rad_to_deg(from_wave[k].aoa_rad),
                rad_to_deg(from_model[k].aoa_rad), 1.0);
  }
  // ToF *differences* between paths agree (the absolute values differ by
  // the common packet-detection delay, as on real hardware).
  const double gap_wave = (from_wave[1].tof_s - from_wave[0].tof_s) * 1e9;
  const double gap_model = (from_model[1].tof_s - from_model[0].tof_s) * 1e9;
  EXPECT_NEAR(gap_wave, gap_model, 5.0);
}

TEST(Transceiver, MusicRecoversAoaFromWaveformCsi) {
  // End to end: waveform -> CSI -> SpotFi's estimator.
  PhyConfig cfg;
  cfg.snr_db = 35.0;
  const PhyFrame frame = transmit_ltf_frame(cfg);
  const auto p = phy_path(-30.0, 50.0, 0.0);
  Rng rng(9);
  const CMatrix rx = apply_multipath_channel(
      frame, std::span<const PathComponent>(&p, 1), cfg, rng);
  const PhyCsiResult result = receive_csi(rx, cfg);

  LinkConfig link = cfg.link;
  link.subcarrier_spacing_hz = 4.0 * cfg.ofdm.subcarrier_spacing_hz();
  const JointMusicEstimator estimator(link);
  const auto estimates = estimator.estimate(result.csi);
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), -30.0, 1.5);
}

}  // namespace
}  // namespace spotfi
