// Tests for CSI quality screening (failure injection) and the streaming
// localization server.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "core/streaming.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

CsiPacket good_packet(Rng& rng, double timestamp = 0.0) {
  ImpairmentConfig imp;
  const CsiSynthesizer synth(kLink, imp);
  PathComponent p;
  p.aoa_rad = 0.3;
  p.tof_s = 40e-9;
  p.gain_db = -55.0;
  p.is_direct = true;
  return synth.synthesize(std::span<const PathComponent>(&p, 1), timestamp,
                          rng);
}

// --- quality screening / failure injection ---

TEST(Quality, AcceptsHealthyPacket) {
  Rng rng(1);
  const auto packet = good_packet(rng);
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_TRUE(verdict.ok);
  EXPECT_TRUE(verdict.reason.empty());
}

TEST(Quality, RejectsNanEntry) {
  Rng rng(2);
  auto packet = good_packet(rng);
  packet.csi(1, 7) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.reason.find("non-finite"), std::string::npos);
}

TEST(Quality, RejectsInfiniteRssi) {
  Rng rng(3);
  auto packet = good_packet(rng);
  packet.rssi_dbm = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(screen_packet(packet).ok);
}

TEST(Quality, RejectsDeadAntenna) {
  Rng rng(4);
  auto packet = good_packet(rng);
  for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
    packet.csi(2, n) = cplx{};
  }
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.reason.find("dead antenna"), std::string::npos);
}

TEST(Quality, RejectsGrossAntennaImbalance) {
  Rng rng(5);
  auto packet = good_packet(rng);
  for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
    packet.csi(0, n) *= 1e4;  // +80 dB on one chain
  }
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.reason.find("imbalance"), std::string::npos);
}

TEST(Quality, RejectsEmptyPacket) {
  CsiPacket packet;
  EXPECT_FALSE(screen_packet(packet).ok);
}

TEST(Quality, GroupScreenDropsPowerJump) {
  Rng rng(6);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 8; ++i) group.push_back(good_packet(rng, 0.1 * i));
  // One clipped packet: +40 dB power.
  for (auto& v : group[3].csi.flat()) v *= 100.0;
  std::vector<std::string> rejected;
  const auto accepted = screen_group(group, {}, &rejected);
  EXPECT_EQ(accepted.size(), 7u);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_NE(rejected[0].find("packet 3"), std::string::npos);
  EXPECT_NE(rejected[0].find("power jump"), std::string::npos);
}

TEST(Quality, GroupScreenKeepsCleanGroup) {
  Rng rng(7);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 6; ++i) group.push_back(good_packet(rng, 0.1 * i));
  EXPECT_EQ(screen_group(group).size(), 6u);
  EXPECT_TRUE(screen_group({}).empty());
}

TEST(Quality, ChecksCanBeDisabled) {
  Rng rng(8);
  auto packet = good_packet(rng);
  for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
    packet.csi(2, n) = cplx{};
  }
  QualityConfig cfg;
  cfg.check_dead_antenna = false;
  cfg.max_antenna_imbalance_db = 1e9;
  EXPECT_TRUE(screen_packet(packet, cfg).ok);
}

TEST(Quality, SinglePacketGroupIsItsOwnMedian) {
  // The power-jump check compares against the group median; with one
  // packet that median is the packet itself, so the jump is zero and a
  // clean packet must survive.
  Rng rng(41);
  std::vector<CsiPacket> group{good_packet(rng)};
  EXPECT_EQ(screen_group(group).size(), 1u);

  // Even a clipped single packet survives the jump check (no reference
  // to compare against) as long as the per-packet checks pass.
  for (auto& v : group[0].csi.flat()) v *= 100.0;
  EXPECT_EQ(screen_group(group).size(), 1u);
}

TEST(Quality, AllPacketsRejectedGroup) {
  Rng rng(42);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 4; ++i) {
    auto packet = good_packet(rng, 0.1 * i);
    packet.csi(0, 0) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
    group.push_back(packet);
  }
  std::vector<std::string> rejected;
  EXPECT_TRUE(screen_group(group, {}, &rejected).empty());
  EXPECT_EQ(rejected.size(), 4u);
}

TEST(Quality, AntennaImbalanceBoundary) {
  // Build a packet whose rows differ by an exact, known power ratio and
  // probe both sides of max_antenna_imbalance_db.
  CsiPacket packet;
  packet.csi = CMatrix(3, 30, cplx(1.0, 0.0));
  packet.rssi_dbm = -50.0;
  // Row 0 raised so the row-power spread is exactly `spread_db`.
  auto with_spread = [&](double spread_db) {
    CsiPacket p = packet;
    const double amp = std::pow(10.0, spread_db / 20.0);
    for (std::size_t n = 0; n < p.csi.cols(); ++n) p.csi(0, n) *= amp;
    return p;
  };
  QualityConfig cfg;
  cfg.max_antenna_imbalance_db = 25.0;
  EXPECT_TRUE(screen_packet(with_spread(24.9), cfg).ok);
  EXPECT_FALSE(screen_packet(with_spread(25.1), cfg).ok);
  // The check rejects only above the threshold (strict inequality), so
  // the documented "real chains sit within ~10 dB" margin is inclusive.
  EXPECT_TRUE(screen_packet(with_spread(0.0), cfg).ok);
}

TEST(Quality, DeadAntennaFloorBoundary) {
  // All rows share the same tiny power so the imbalance check stays
  // quiet; probe the dead_antenna_floor on both sides.
  auto uniform_power = [](double row_power) {
    CsiPacket p;
    const double amp = std::sqrt(row_power / 30.0);
    p.csi = CMatrix(3, 30, cplx(amp, 0.0));
    p.rssi_dbm = -80.0;
    return p;
  };
  QualityConfig cfg;
  cfg.dead_antenna_floor = 1e-9;
  EXPECT_TRUE(screen_packet(uniform_power(2e-9), cfg).ok);
  EXPECT_FALSE(screen_packet(uniform_power(0.5e-9), cfg).ok);
  // Disabling the check admits the silent row.
  cfg.check_dead_antenna = false;
  EXPECT_TRUE(screen_packet(uniform_power(0.5e-9), cfg).ok);
}

TEST(Quality, ApProcessorScreensWhenConfigured) {
  // A group with one NaN packet: with screening on, processing succeeds
  // on the clean subset; a fully corrupt group throws.
  Rng rng(9);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 8; ++i) group.push_back(good_packet(rng, 0.1 * i));
  group[2].csi(0, 0) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);

  ApProcessorConfig cfg;
  cfg.quality = QualityConfig{};
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.3}, cfg);
  const ApResult result = processor.process(group, rng);
  EXPECT_FALSE(result.clusters.empty());

  std::vector<CsiPacket> all_bad(3, group[2]);
  EXPECT_THROW(processor.process(all_bad, rng), ContractViolation);
}

// --- streaming server ---

/// Simulated feed: one office target, packets interleaved across APs.
struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;

  explicit Feed(std::size_t packets, Vec2 target = {6.0, 3.5})
      : runner(kLink, office_deployment(), make_config(packets)) {
    Rng rng(11);
    captures = runner.simulate_captures(target, rng);
  }
  static ExperimentConfig make_config(std::size_t packets) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    return config;
  }
};

TEST(Streaming, FiresAfterFullGroups) {
  Feed feed(6);
  StreamingConfig cfg;
  cfg.group_size = 6;
  cfg.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.server.localizer.area_max = feed.runner.deployment().area_max;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  EXPECT_EQ(server.ap_count(), feed.captures.size());

  Rng rng(12);
  std::size_t fixes = 0;
  Vec2 last{};
  // Interleave: packet p of every AP, then p+1, ...
  for (std::size_t p = 0; p < 6; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      const auto fix = server.push(a, feed.captures[a].packets[p], rng);
      if (fix) {
        ++fixes;
        last = fix->raw;
        // Fires exactly when the last AP completes its group.
        EXPECT_EQ(p, 5u);
        EXPECT_EQ(a, feed.captures.size() - 1);
      }
    }
  }
  EXPECT_EQ(fixes, 1u);
  EXPECT_LT(distance(last, {6.0, 3.5}), 3.0);
  // Buffers drained after the round.
  for (std::size_t a = 0; a < server.ap_count(); ++a) {
    EXPECT_EQ(server.buffered(a), 0u);
  }
}

TEST(Streaming, RejectedPacketsNeverBuffer) {
  Feed feed(4);
  StreamingConfig cfg;
  cfg.group_size = 4;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);

  Rng rng(13);
  CsiPacket bad = feed.captures[0].packets[0];
  bad.csi(0, 0) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  EXPECT_FALSE(server.push(0, bad, rng).has_value());
  EXPECT_EQ(server.buffered(0), 0u);
  EXPECT_EQ(server.rejected_count(), 1u);
}

TEST(Streaming, StalePacketsAgeOut) {
  Feed feed(4);
  StreamingConfig cfg;
  cfg.group_size = 2;
  cfg.max_packet_age_s = 1.0;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);

  Rng rng(14);
  CsiPacket old = feed.captures[0].packets[0];
  old.timestamp_s = 0.0;
  EXPECT_FALSE(server.push(0, old, rng).has_value());
  EXPECT_EQ(server.buffered(0), 1u);
  CsiPacket fresh = feed.captures[0].packets[1];
  fresh.timestamp_s = 5.0;  // far beyond max_packet_age_s
  EXPECT_FALSE(server.push(0, fresh, rng).has_value());
  EXPECT_EQ(server.buffered(0), 1u);  // the stale packet was dropped
}

TEST(Streaming, SuccessiveFixesFeedTracker) {
  Feed feed(12);
  StreamingConfig cfg;
  cfg.group_size = 4;
  cfg.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.server.localizer.area_max = feed.runner.deployment().area_max;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);

  Rng rng(15);
  std::size_t fixes = 0;
  for (std::size_t p = 0; p < 12; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      if (const auto fix =
              server.push(a, feed.captures[a].packets[p], rng)) {
        ++fixes;
        EXPECT_TRUE(server.tracker().initialized());
        EXPECT_LT(distance(fix->tracked, {6.0, 3.5}), 4.0);
      }
    }
  }
  EXPECT_EQ(fixes, 3u);  // 12 packets / group of 4
}

TEST(Streaming, ContractChecks) {
  StreamingLocalizer server(kLink, {});
  Rng rng(16);
  CsiPacket packet;
  EXPECT_THROW(server.push(0, packet, rng), ContractViolation);
  server.add_ap(ArrayPose{});
  EXPECT_THROW(server.push(0, packet, rng), ContractViolation);  // 1 AP
  EXPECT_THROW(server.buffered(5), ContractViolation);
  StreamingConfig bad;
  bad.group_size = 0;
  EXPECT_THROW(StreamingLocalizer(kLink, bad), ContractViolation);
}

TEST(Streaming, UnknownApIdThrowsWithClearMessage) {
  Feed feed(2);
  StreamingLocalizer server(kLink, {});
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  Rng rng(17);
  try {
    (void)server.push(7, feed.captures[0].packets[0], rng);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown AP id 7"), std::string::npos) << what;
    EXPECT_NE(what.find("6 APs registered"), std::string::npos) << what;
  }
  // Health accessors share the bounds contract.
  EXPECT_THROW(server.ap_health(99), ContractViolation);
  EXPECT_THROW(server.ap_state(99), ContractViolation);
}

// --- AP health state machine: property-style interleavings ---

TEST(ApHealthProperty, RandomInterleavingsNeverStickAndAlwaysTrackSilence) {
  // Property: whatever interleaving of packet arrivals and silent time
  // advances an AP experiences, its health is a pure function of its
  // current silence — never a sticky artifact of the path taken. In
  // particular an AP that just delivered a packet at stream time `now`
  // is healthy, no matter how many times it died and recovered before.
  const double kDegradedAfter = 1.0, kDeadAfter = 3.0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Feed feed(2);
    StreamingConfig cfg;
    // Rounds never fire: this test is about the health machine only.
    cfg.group_size = 100000;
    cfg.max_packet_age_s = 1e9;
    cfg.degradation.degraded_after_s = kDegradedAfter;
    cfg.degradation.dead_after_s = kDeadAfter;
    StreamingLocalizer server(kLink, cfg);
    const std::size_t n_aps = feed.captures.size();
    for (const auto& capture : feed.captures) server.add_ap(capture.pose);

    Rng events(1000 + seed);
    Rng packet_rng(2000 + seed);
    double now = 0.0;
    std::vector<double> last_accepted(n_aps,
                                      std::numeric_limits<double>::quiet_NaN());
    std::optional<double> stream_start;
    std::vector<std::size_t> recoveries(n_aps, 0);

    for (int step = 0; step < 200; ++step) {
      const bool is_push = events.uniform() < 0.6;
      // Dead (>= 3 s) and degraded (>= 1 s) silences must both be
      // reachable: jumps up to 2.2 s, so two in a row can kill an AP.
      now += events.uniform(0.0, 2.2);
      if (is_push) {
        const auto ap = static_cast<std::size_t>(events.uniform_index(n_aps));
        // Before the stream starts every AP reads healthy, so this is
        // false there and a true dead -> healthy edge everywhere else.
        const bool was_dead = server.ap_health(ap) == ApHealth::kDead;
        CsiPacket packet = good_packet(packet_rng, now);
        ASSERT_FALSE(server.push(ap, std::move(packet), events).has_value());
        if (!stream_start) stream_start = now;
        last_accepted[ap] = now;
        if (was_dead) ++recoveries[ap];
      } else {
        ASSERT_FALSE(server.poll(now, events).has_value());
      }
      if (!stream_start) continue;
      for (std::size_t a = 0; a < n_aps; ++a) {
        const double last =
            std::isnan(last_accepted[a]) ? *stream_start : last_accepted[a];
        const double silence = now - last;
        ApHealth expected = ApHealth::kHealthy;
        if (silence >= kDeadAfter) {
          expected = ApHealth::kDead;
        } else if (silence >= kDegradedAfter) {
          expected = ApHealth::kDegraded;
        }
        ASSERT_EQ(server.ap_health(a), expected)
            << "seed " << seed << " step " << step << " ap " << a
            << " silence " << silence;
        ASSERT_EQ(server.ap_state(a).recoveries, recoveries[a])
            << "seed " << seed << " step " << step << " ap " << a;
      }
    }
  }
}

// --- overload fidelity ladder through the streaming localizer ---

/// Streaming config sized so one interleaved pass of `packets` packets
/// per AP fires exactly one round.
StreamingConfig one_round_config(const Feed& feed, std::size_t packets) {
  StreamingConfig cfg;
  cfg.group_size = packets;
  cfg.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.server.localizer.area_max = feed.runner.deployment().area_max;
  return cfg;
}

std::optional<LocationFix> push_one_round(StreamingLocalizer& server,
                                          const Feed& feed,
                                          std::size_t packets, Rng& rng) {
  std::optional<LocationFix> fired;
  for (std::size_t p = 0; p < packets; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      if (auto fix = server.push(a, feed.captures[a].packets[p], rng)) {
        fired = std::move(fix);
      }
    }
  }
  return fired;
}

TEST(OverloadFidelity, ManualEspritFidelityEntersChainAtEsprit) {
  Feed feed(6);
  StreamingLocalizer server(kLink, one_round_config(feed, 6));
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  server.set_fidelity(ShedLevel::kEsprit);
  EXPECT_EQ(server.fidelity(), ShedLevel::kEsprit);

  Rng rng(21);
  const auto fix = push_one_round(server, feed, 6, rng);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->round.fidelity, ShedLevel::kEsprit);
  EXPECT_TRUE(fix->degraded);
  ASSERT_FALSE(fix->reasons.empty());
  EXPECT_NE(fix->reasons[0].find("overload"), std::string::npos);
  // Every AP entered the fallback chain at ESPRIT — no stage above it.
  for (const ApStage stage : fix->round.ap_stages) {
    EXPECT_GE(stage, ApStage::kEsprit);
  }
  EXPECT_LT(distance(fix->raw, {6.0, 3.5}), 4.0);
}

TEST(OverloadFidelity, RssiOnlyFidelityYieldsBearinglessRound) {
  Feed feed(6);
  StreamingLocalizer server(kLink, one_round_config(feed, 6));
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  server.set_fidelity(ShedLevel::kRssiOnly);

  Rng rng(22);
  const auto fix = push_one_round(server, feed, 6, rng);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->round.fidelity, ShedLevel::kRssiOnly);
  for (const ApStage stage : fix->round.ap_stages) {
    EXPECT_EQ(stage, ApStage::kRssiOnly);
  }
  for (const auto& result : fix->round.ap_results) {
    EXPECT_FALSE(result.observation.has_aoa);
  }
}

TEST(OverloadFidelity, PlannerShedDropsRoundButDrainsBacklog) {
  Feed feed(6);
  StreamingLocalizer server(kLink, one_round_config(feed, 6));
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  std::size_t planned = 0;
  server.set_round_planner([&](std::size_t n_aps, double) {
    ++planned;
    EXPECT_EQ(n_aps, feed.captures.size());
    RoundPlan plan;
    plan.run = false;
    plan.reason = "test shed";
    return plan;
  });

  Rng rng(23);
  const auto fix = push_one_round(server, feed, 6, rng);
  EXPECT_FALSE(fix.has_value());
  EXPECT_EQ(planned, 1u);
  EXPECT_EQ(server.shed_rounds(), 1u);
  EXPECT_EQ(server.fix_count(), 0u);
  ASSERT_TRUE(server.last_shed().has_value());
  EXPECT_NE(server.last_shed()->reason.find("test shed"), std::string::npos);
  // The shed round still consumed its packet groups: backlog drained.
  for (std::size_t a = 0; a < server.ap_count(); ++a) {
    EXPECT_EQ(server.buffered(a), 0u);
  }
}

TEST(OverloadFidelity, PlannerLevelOverridesManualFidelity) {
  Feed feed(6);
  StreamingLocalizer server(kLink, one_round_config(feed, 6));
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  server.set_fidelity(ShedLevel::kRssiOnly);  // the plan must win
  server.set_round_planner([](std::size_t, double) {
    RoundPlan plan;
    plan.level = ShedLevel::kCoarse;
    plan.reason = "planner says coarse";
    return plan;
  });

  Rng rng(24);
  const auto fix = push_one_round(server, feed, 6, rng);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->round.fidelity, ShedLevel::kCoarse);
  for (const ApStage stage : fix->round.ap_stages) {
    EXPECT_GE(stage, ApStage::kRelaxedMusic);
  }
}

}  // namespace
}  // namespace spotfi
