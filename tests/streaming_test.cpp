// Tests for CSI quality screening (failure injection) and the streaming
// localization server.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/streaming.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

CsiPacket good_packet(Rng& rng, double timestamp = 0.0) {
  ImpairmentConfig imp;
  const CsiSynthesizer synth(kLink, imp);
  PathComponent p;
  p.aoa_rad = 0.3;
  p.tof_s = 40e-9;
  p.gain_db = -55.0;
  p.is_direct = true;
  return synth.synthesize(std::span<const PathComponent>(&p, 1), timestamp,
                          rng);
}

// --- quality screening / failure injection ---

TEST(Quality, AcceptsHealthyPacket) {
  Rng rng(1);
  const auto packet = good_packet(rng);
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_TRUE(verdict.ok);
  EXPECT_TRUE(verdict.reason.empty());
}

TEST(Quality, RejectsNanEntry) {
  Rng rng(2);
  auto packet = good_packet(rng);
  packet.csi(1, 7) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.reason.find("non-finite"), std::string::npos);
}

TEST(Quality, RejectsInfiniteRssi) {
  Rng rng(3);
  auto packet = good_packet(rng);
  packet.rssi_dbm = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(screen_packet(packet).ok);
}

TEST(Quality, RejectsDeadAntenna) {
  Rng rng(4);
  auto packet = good_packet(rng);
  for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
    packet.csi(2, n) = cplx{};
  }
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.reason.find("dead antenna"), std::string::npos);
}

TEST(Quality, RejectsGrossAntennaImbalance) {
  Rng rng(5);
  auto packet = good_packet(rng);
  for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
    packet.csi(0, n) *= 1e4;  // +80 dB on one chain
  }
  const QualityVerdict verdict = screen_packet(packet);
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.reason.find("imbalance"), std::string::npos);
}

TEST(Quality, RejectsEmptyPacket) {
  CsiPacket packet;
  EXPECT_FALSE(screen_packet(packet).ok);
}

TEST(Quality, GroupScreenDropsPowerJump) {
  Rng rng(6);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 8; ++i) group.push_back(good_packet(rng, 0.1 * i));
  // One clipped packet: +40 dB power.
  for (auto& v : group[3].csi.flat()) v *= 100.0;
  std::vector<std::string> rejected;
  const auto accepted = screen_group(group, {}, &rejected);
  EXPECT_EQ(accepted.size(), 7u);
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_NE(rejected[0].find("packet 3"), std::string::npos);
  EXPECT_NE(rejected[0].find("power jump"), std::string::npos);
}

TEST(Quality, GroupScreenKeepsCleanGroup) {
  Rng rng(7);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 6; ++i) group.push_back(good_packet(rng, 0.1 * i));
  EXPECT_EQ(screen_group(group).size(), 6u);
  EXPECT_TRUE(screen_group({}).empty());
}

TEST(Quality, ChecksCanBeDisabled) {
  Rng rng(8);
  auto packet = good_packet(rng);
  for (std::size_t n = 0; n < packet.csi.cols(); ++n) {
    packet.csi(2, n) = cplx{};
  }
  QualityConfig cfg;
  cfg.check_dead_antenna = false;
  cfg.max_antenna_imbalance_db = 1e9;
  EXPECT_TRUE(screen_packet(packet, cfg).ok);
}

TEST(Quality, SinglePacketGroupIsItsOwnMedian) {
  // The power-jump check compares against the group median; with one
  // packet that median is the packet itself, so the jump is zero and a
  // clean packet must survive.
  Rng rng(41);
  std::vector<CsiPacket> group{good_packet(rng)};
  EXPECT_EQ(screen_group(group).size(), 1u);

  // Even a clipped single packet survives the jump check (no reference
  // to compare against) as long as the per-packet checks pass.
  for (auto& v : group[0].csi.flat()) v *= 100.0;
  EXPECT_EQ(screen_group(group).size(), 1u);
}

TEST(Quality, AllPacketsRejectedGroup) {
  Rng rng(42);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 4; ++i) {
    auto packet = good_packet(rng, 0.1 * i);
    packet.csi(0, 0) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
    group.push_back(packet);
  }
  std::vector<std::string> rejected;
  EXPECT_TRUE(screen_group(group, {}, &rejected).empty());
  EXPECT_EQ(rejected.size(), 4u);
}

TEST(Quality, AntennaImbalanceBoundary) {
  // Build a packet whose rows differ by an exact, known power ratio and
  // probe both sides of max_antenna_imbalance_db.
  CsiPacket packet;
  packet.csi = CMatrix(3, 30, cplx(1.0, 0.0));
  packet.rssi_dbm = -50.0;
  // Row 0 raised so the row-power spread is exactly `spread_db`.
  auto with_spread = [&](double spread_db) {
    CsiPacket p = packet;
    const double amp = std::pow(10.0, spread_db / 20.0);
    for (std::size_t n = 0; n < p.csi.cols(); ++n) p.csi(0, n) *= amp;
    return p;
  };
  QualityConfig cfg;
  cfg.max_antenna_imbalance_db = 25.0;
  EXPECT_TRUE(screen_packet(with_spread(24.9), cfg).ok);
  EXPECT_FALSE(screen_packet(with_spread(25.1), cfg).ok);
  // The check rejects only above the threshold (strict inequality), so
  // the documented "real chains sit within ~10 dB" margin is inclusive.
  EXPECT_TRUE(screen_packet(with_spread(0.0), cfg).ok);
}

TEST(Quality, DeadAntennaFloorBoundary) {
  // All rows share the same tiny power so the imbalance check stays
  // quiet; probe the dead_antenna_floor on both sides.
  auto uniform_power = [](double row_power) {
    CsiPacket p;
    const double amp = std::sqrt(row_power / 30.0);
    p.csi = CMatrix(3, 30, cplx(amp, 0.0));
    p.rssi_dbm = -80.0;
    return p;
  };
  QualityConfig cfg;
  cfg.dead_antenna_floor = 1e-9;
  EXPECT_TRUE(screen_packet(uniform_power(2e-9), cfg).ok);
  EXPECT_FALSE(screen_packet(uniform_power(0.5e-9), cfg).ok);
  // Disabling the check admits the silent row.
  cfg.check_dead_antenna = false;
  EXPECT_TRUE(screen_packet(uniform_power(0.5e-9), cfg).ok);
}

TEST(Quality, ApProcessorScreensWhenConfigured) {
  // A group with one NaN packet: with screening on, processing succeeds
  // on the clean subset; a fully corrupt group throws.
  Rng rng(9);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 8; ++i) group.push_back(good_packet(rng, 0.1 * i));
  group[2].csi(0, 0) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);

  ApProcessorConfig cfg;
  cfg.quality = QualityConfig{};
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.3}, cfg);
  const ApResult result = processor.process(group, rng);
  EXPECT_FALSE(result.clusters.empty());

  std::vector<CsiPacket> all_bad(3, group[2]);
  EXPECT_THROW(processor.process(all_bad, rng), ContractViolation);
}

// --- streaming server ---

/// Simulated feed: one office target, packets interleaved across APs.
struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;

  explicit Feed(std::size_t packets, Vec2 target = {6.0, 3.5})
      : runner(kLink, office_deployment(), make_config(packets)) {
    Rng rng(11);
    captures = runner.simulate_captures(target, rng);
  }
  static ExperimentConfig make_config(std::size_t packets) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    return config;
  }
};

TEST(Streaming, FiresAfterFullGroups) {
  Feed feed(6);
  StreamingConfig cfg;
  cfg.group_size = 6;
  cfg.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.server.localizer.area_max = feed.runner.deployment().area_max;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  EXPECT_EQ(server.ap_count(), feed.captures.size());

  Rng rng(12);
  std::size_t fixes = 0;
  Vec2 last{};
  // Interleave: packet p of every AP, then p+1, ...
  for (std::size_t p = 0; p < 6; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      const auto fix = server.push(a, feed.captures[a].packets[p], rng);
      if (fix) {
        ++fixes;
        last = fix->raw;
        // Fires exactly when the last AP completes its group.
        EXPECT_EQ(p, 5u);
        EXPECT_EQ(a, feed.captures.size() - 1);
      }
    }
  }
  EXPECT_EQ(fixes, 1u);
  EXPECT_LT(distance(last, {6.0, 3.5}), 3.0);
  // Buffers drained after the round.
  for (std::size_t a = 0; a < server.ap_count(); ++a) {
    EXPECT_EQ(server.buffered(a), 0u);
  }
}

TEST(Streaming, RejectedPacketsNeverBuffer) {
  Feed feed(4);
  StreamingConfig cfg;
  cfg.group_size = 4;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);

  Rng rng(13);
  CsiPacket bad = feed.captures[0].packets[0];
  bad.csi(0, 0) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  EXPECT_FALSE(server.push(0, bad, rng).has_value());
  EXPECT_EQ(server.buffered(0), 0u);
  EXPECT_EQ(server.rejected_count(), 1u);
}

TEST(Streaming, StalePacketsAgeOut) {
  Feed feed(4);
  StreamingConfig cfg;
  cfg.group_size = 2;
  cfg.max_packet_age_s = 1.0;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);

  Rng rng(14);
  CsiPacket old = feed.captures[0].packets[0];
  old.timestamp_s = 0.0;
  EXPECT_FALSE(server.push(0, old, rng).has_value());
  EXPECT_EQ(server.buffered(0), 1u);
  CsiPacket fresh = feed.captures[0].packets[1];
  fresh.timestamp_s = 5.0;  // far beyond max_packet_age_s
  EXPECT_FALSE(server.push(0, fresh, rng).has_value());
  EXPECT_EQ(server.buffered(0), 1u);  // the stale packet was dropped
}

TEST(Streaming, SuccessiveFixesFeedTracker) {
  Feed feed(12);
  StreamingConfig cfg;
  cfg.group_size = 4;
  cfg.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.server.localizer.area_max = feed.runner.deployment().area_max;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);

  Rng rng(15);
  std::size_t fixes = 0;
  for (std::size_t p = 0; p < 12; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      if (const auto fix =
              server.push(a, feed.captures[a].packets[p], rng)) {
        ++fixes;
        EXPECT_TRUE(server.tracker().initialized());
        EXPECT_LT(distance(fix->tracked, {6.0, 3.5}), 4.0);
      }
    }
  }
  EXPECT_EQ(fixes, 3u);  // 12 packets / group of 4
}

TEST(Streaming, ContractChecks) {
  StreamingLocalizer server(kLink, {});
  Rng rng(16);
  CsiPacket packet;
  EXPECT_THROW(server.push(0, packet, rng), ContractViolation);
  server.add_ap(ArrayPose{});
  EXPECT_THROW(server.push(0, packet, rng), ContractViolation);  // 1 AP
  EXPECT_THROW(server.buffered(5), ContractViolation);
  StreamingConfig bad;
  bad.group_size = 0;
  EXPECT_THROW(StreamingLocalizer(kLink, bad), ContractViolation);
}

TEST(Streaming, UnknownApIdThrowsWithClearMessage) {
  Feed feed(2);
  StreamingLocalizer server(kLink, {});
  for (const auto& capture : feed.captures) server.add_ap(capture.pose);
  Rng rng(17);
  try {
    (void)server.push(7, feed.captures[0].packets[0], rng);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown AP id 7"), std::string::npos) << what;
    EXPECT_NE(what.find("6 APs registered"), std::string::npos) << what;
  }
  // Health accessors share the bounds contract.
  EXPECT_THROW(server.ap_health(99), ContractViolation);
  EXPECT_THROW(server.ap_state(99), ContractViolation);
}

}  // namespace
}  // namespace spotfi
