// Degenerate-input stress suite: drives the fault-tolerant pipeline with
// every NumericalFaultKind and asserts graceful degradation — try_localize
// either returns a finite location (with the degradation recorded in its
// notes/numerics telemetry) or a RoundError with a reason; it never throws
// and never emits a non-finite coordinate.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "channel/faults.hpp"
#include "common/constants.hpp"
#include "core/server.hpp"
#include "linalg/hermitian_eig.hpp"
#include "linalg/numerics.hpp"
#include "localize/gdop.hpp"
#include "localize/spotfi_localizer.hpp"
#include "testbed/deployment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

/// Clean office-deployment captures of `target`, one burst per AP.
std::vector<ApCapture> office_captures(const Deployment& deployment,
                                       Vec2 target, Rng& rng,
                                       std::size_t n_packets = 10) {
  MultipathConfig mp;
  ImpairmentConfig imp;
  const CsiSynthesizer synth(kLink, imp);
  std::vector<ApCapture> captures;
  for (const auto& pose : deployment.aps) {
    const auto paths = enumerate_paths(deployment.plan, deployment.scatterers,
                                       pose, target, mp);
    ApCapture c;
    c.pose = pose;
    Rng fork = rng.fork();
    c.packets = synth.synthesize_burst(paths, n_packets, 0.1, fork);
    captures.push_back(std::move(c));
  }
  return captures;
}

ServerConfig office_config(const Deployment& deployment) {
  ServerConfig config;
  config.localizer.area_min = deployment.area_min;
  config.localizer.area_max = deployment.area_max;
  return config;
}

bool finite_position(const Vec2& p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

// The acceptance contract of the suite: for EVERY fault class injected on
// EVERY AP's every packet, the round either localizes to a finite point or
// reports why it could not. No exceptions escape, nothing non-finite.
//
// The rank-deficiency kinds are special: a fully coherent bundle is
// *valid* physics (zero angular spread), and rank-deficient covariances
// are MUSIC's normal operating regime — the pipeline is expected to
// handle them silently on the primary path. Only the value-poisoning
// kinds (NaN/Inf/denormal/huge dynamic range) must leave a trace in the
// round diagnostics when the round still produces a location.
TEST(StressSuite, EveryFaultKindOnAllApsDegradesGracefully) {
  const Deployment deployment = office_deployment();
  const SpotFiServer server(kLink, office_config(deployment));
  for (std::size_t f = 0; f < kNumericalFaultKindCount; ++f) {
    const auto kind = static_cast<NumericalFaultKind>(f);
    SCOPED_TRACE(to_string(kind));
    Rng rng(100 + f);
    auto captures = office_captures(deployment, {8.0, 5.5}, rng);
    for (auto& capture : captures) {
      for (auto& packet : capture.packets) {
        inject_numerical_fault(packet, kind, kLink, rng);
      }
    }
    const auto round = server.try_localize(captures, rng);
    if (round.has_value()) {
      EXPECT_TRUE(finite_position(round->location.position));
      EXPECT_TRUE(std::isfinite(round->location.cost));
      const bool value_poisoning =
          kind != NumericalFaultKind::kRankCollapse &&
          kind != NumericalFaultKind::kNearSingularCovariance;
      if (value_poisoning) {
        EXPECT_TRUE(!round->notes.empty() || round->numerics.any() ||
                    round->degraded)
            << "value fault left no trace in the round diagnostics";
      }
    } else {
      EXPECT_FALSE(round.error().reason.empty());
    }
  }
}

// One poisoned AP among five clean ones must not sink the round: the
// fallback chain (or LOO rejection) contains it and the fix stays finite
// and inside the search area.
TEST(StressSuite, SingleFaultyApIsContained) {
  const Deployment deployment = office_deployment();
  const Vec2 target{8.0, 5.5};
  const SpotFiServer server(kLink, office_config(deployment));
  for (std::size_t f = 0; f < kNumericalFaultKindCount; ++f) {
    const auto kind = static_cast<NumericalFaultKind>(f);
    SCOPED_TRACE(to_string(kind));
    Rng rng(200 + f);
    auto captures = office_captures(deployment, target, rng);
    for (auto& packet : captures[0].packets) {
      inject_numerical_fault(packet, kind, kLink, rng);
    }
    const auto round = server.try_localize(captures, rng);
    ASSERT_TRUE(round.has_value()) << round.error().reason;
    ASSERT_TRUE(finite_position(round->location.position));
    EXPECT_GE(round->location.position.x, deployment.area_min.x - 1.0);
    EXPECT_LE(round->location.position.x, deployment.area_max.x + 1.0);
    EXPECT_GE(round->location.position.y, deployment.area_min.y - 1.0);
    EXPECT_LE(round->location.position.y, deployment.area_max.y + 1.0);
  }
}

// The rank-collapse injector really produces a rank-one CSI matrix — the
// covariance eigh sees exactly one significant eigenvalue, and rcond
// reports the collapse as a diagnostic without failing.
TEST(StressSuite, RankCollapseProducesRankOneCovariance) {
  const Deployment deployment = office_deployment();
  Rng rng(42);
  auto captures = office_captures(deployment, {8.0, 5.5}, rng, 1);
  CsiPacket& packet = captures[0].packets[0];
  inject_numerical_fault(packet, NumericalFaultKind::kRankCollapse, kLink,
                         rng);
  for (const cplx& v : packet.csi.flat()) {
    ASSERT_TRUE(std::isfinite(v.real()) && std::isfinite(v.imag()));
  }
  const HermitianEig eig = eigh(packet.csi.gram());
  EXPECT_TRUE(eig.converged);
  EXPECT_LT(eig.rcond, 1e-10);
  const double top = eig.eigenvalues.back();
  ASSERT_GT(top, 0.0);
  // Every other eigenvalue is negligible against the dominant one.
  for (std::size_t k = 0; k + 1 < eig.eigenvalues.size(); ++k) {
    EXPECT_LT(std::abs(eig.eigenvalues[k]), 1e-8 * top);
  }
}

// The corridor geometry the injector builds is exactly the GDOP
// degeneracy: on the AP line every bearing is parallel.
TEST(StressSuite, CollinearApLineIsGdopDegenerateOnTheLine) {
  const auto aps = collinear_ap_line(5, {0.0, 1.0}, {2.0, 0.0}, kPi / 2.0);
  ASSERT_EQ(aps.size(), 5u);
  NumericsScope scope;
  const auto on_line = try_bearing_gdop(aps, {20.0, 1.0}, 0.02);
  EXPECT_FALSE(on_line.has_value());
  EXPECT_EQ(scope.counters().gdop_degenerate, 1u);
  const auto off_line = try_bearing_gdop(aps, {4.0, 6.0}, 0.02);
  ASSERT_TRUE(off_line.has_value());
  EXPECT_TRUE(std::isfinite(off_line->drms_m));
}

// Observations no regularization can save: every multi-start seed sees a
// non-finite objective, locate() reports the round as numerically
// unusable instead of silently returning the (0, 0) default.
TEST(StressSuite, LocalizerRejectsAllDivergedStarts) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  std::vector<ApObservation> obs(3);
  obs[0].pose = {{0.0, 0.0}, 0.0};
  obs[1].pose = {{10.0, 0.0}, kPi};
  obs[2].pose = {{5.0, 8.0}, -kPi / 2.0};
  for (auto& o : obs) {
    o.direct_aoa_rad = 0.1;
    o.rssi_dbm = kNan;  // poisons every residual evaluation
  }
  const SpotFiLocalizer localizer;
  NumericsScope scope;
  EXPECT_THROW((void)localizer.locate(obs), NumericalError);
  EXPECT_GT(scope.counters().localizer_starts_rejected, 0u);
}

TEST(StressSuite, FaultKindNamesAreDistinct) {
  for (std::size_t a = 0; a < kNumericalFaultKindCount; ++a) {
    const std::string name = to_string(static_cast<NumericalFaultKind>(a));
    EXPECT_FALSE(name.empty());
    for (std::size_t b = a + 1; b < kNumericalFaultKindCount; ++b) {
      EXPECT_NE(name, to_string(static_cast<NumericalFaultKind>(b)));
    }
  }
}

}  // namespace
}  // namespace spotfi
