// Tests for the multipath channel simulator: AoA geometry, path
// enumeration (direct / reflected / scattered), and CSI synthesis physics
// including the impairments SpotFi must cope with.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"

namespace spotfi {
namespace {

TEST(ArrayPose, BroadsideSourceHasZeroAoa) {
  // Array at origin, normal pointing +x: a source on the +x axis is at 0.
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  EXPECT_NEAR(pose.aoa_of({5.0, 0.0}), 0.0, 1e-12);
}

TEST(ArrayPose, SignConvention) {
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  // Axis direction is +y (normal rotated CCW): sources toward +y have
  // positive AoA.
  EXPECT_NEAR(pose.aoa_of({1.0, 1.0}), deg_to_rad(45.0), 1e-12);
  EXPECT_NEAR(pose.aoa_of({1.0, -1.0}), -deg_to_rad(45.0), 1e-12);
}

TEST(ArrayPose, RotatedArray) {
  const ArrayPose pose{{2.0, 3.0}, kPi / 2.0};  // normal points +y
  EXPECT_NEAR(pose.aoa_of({2.0, 8.0}), 0.0, 1e-12);
  EXPECT_NEAR(pose.aoa_of({1.0, 4.0}), deg_to_rad(45.0), 1e-12);
}

TEST(EnumeratePaths, FreeSpaceHasOnlyDirectPath) {
  FloorPlan plan;  // no walls
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const auto paths = enumerate_paths(plan, {}, pose, {10.0, 0.0});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].is_direct);
  EXPECT_NEAR(paths[0].tof_s, 10.0 / kSpeedOfLight, 1e-15);
  EXPECT_NEAR(paths[0].aoa_rad, 0.0, 1e-12);
}

TEST(EnumeratePaths, DirectPathGainFollowsLogDistance) {
  FloorPlan plan;
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const auto near = enumerate_paths(plan, {}, pose, {2.0, 0.0});
  const auto far = enumerate_paths(plan, {}, pose, {20.0, 0.0});
  // Free space exponent 2: 10x the distance costs 20 dB.
  EXPECT_NEAR(near[0].gain_db - far[0].gain_db, 20.0, 1e-9);
}

TEST(EnumeratePaths, WallReflectionGeometry) {
  // Wall along y-axis at x=10; AP and target both on the x<10 side.
  FloorPlan plan;
  plan.add_wall({{{10.0, -50.0}, {10.0, 50.0}}, WallMaterial::drywall(),
                 "mirror"});
  const ArrayPose pose{{0.0, 1.0}, 0.0};
  const Vec2 target{0.0, -1.0};
  const auto paths = enumerate_paths(plan, {}, pose, target);
  ASSERT_EQ(paths.size(), 2u);
  const auto& refl = paths[0].is_direct ? paths[1] : paths[0];
  // Unfolded length: target image at (20, -1) to AP at (0, 1).
  const double expected_len = std::hypot(20.0, 2.0);
  EXPECT_NEAR(refl.tof_s, expected_len / kSpeedOfLight, 1e-15);
  // The bounce point is at (10, 0): arrival direction is from there.
  const Vec2 bounce{10.0, 0.0};
  EXPECT_NEAR(refl.aoa_rad, pose.aoa_of(bounce), 1e-12);
}

TEST(EnumeratePaths, ReflectionRequiresBouncePointOnWall) {
  // Short wall that the specular bounce point misses: no reflection.
  FloorPlan plan;
  plan.add_wall({{{10.0, 40.0}, {10.0, 50.0}}, WallMaterial::drywall(),
                 "high"});
  const ArrayPose pose{{0.0, 1.0}, 0.0};
  const auto paths = enumerate_paths(plan, {}, pose, {0.0, -1.0});
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_TRUE(paths[0].is_direct);
}

TEST(EnumeratePaths, ReflectedPathIsWeakerThanDirect) {
  FloorPlan plan;
  plan.add_wall({{{10.0, -50.0}, {10.0, 50.0}}, WallMaterial::drywall(),
                 "mirror"});
  const ArrayPose pose{{0.0, 1.0}, 0.0};
  const auto paths = enumerate_paths(plan, {}, pose, {0.0, -1.0});
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_TRUE(paths[0].is_direct);  // sorted strongest first
  EXPECT_GT(paths[0].gain_db, paths[1].gain_db);
}

TEST(EnumeratePaths, ScattererAddsPath) {
  FloorPlan plan;
  const Scatterer sc{{5.0, 5.0}, 10.0};
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const auto paths =
      enumerate_paths(plan, std::span<const Scatterer>(&sc, 1), pose,
                      {10.0, 0.0});
  ASSERT_EQ(paths.size(), 2u);
  const auto& scat = paths[0].is_direct ? paths[1] : paths[0];
  const double len = distance({10.0, 0.0}, {5.0, 5.0}) +
                     distance({5.0, 5.0}, {0.0, 0.0});
  EXPECT_NEAR(scat.tof_s, len / kSpeedOfLight, 1e-15);
  EXPECT_NEAR(scat.aoa_rad, pose.aoa_of({5.0, 5.0}), 1e-12);
}

TEST(EnumeratePaths, ObstructedDirectPathFallsBelowReflection) {
  // Metal wall between target and AP, side wall for a reflected path.
  FloorPlan plan;
  plan.add_wall({{{5.0, -10.0}, {5.0, 10.0}}, WallMaterial::metal(),
                 "blocker"});
  plan.add_wall({{{-20.0, 20.0}, {30.0, 20.0}}, WallMaterial::drywall(),
                 "side"});
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const auto paths = enumerate_paths(plan, {}, pose, {10.0, 0.0});
  ASSERT_GE(paths.size(), 2u);
  // The reflected path off the unobstructed side wall must now be stronger
  // than the metal-blocked direct path... but the side-wall bounce also
  // crosses the blocker. Direct loses 30 dB; check ordering by gain holds
  // whatever the geometry by validating sort order.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].gain_db, paths[i].gain_db);
  }
}

TEST(EnumeratePaths, RespectsMaxPathsAndFloor) {
  FloorPlan plan;
  plan.add_rectangle({-20.0, -20.0}, {20.0, 20.0}, WallMaterial::drywall(),
                     "shell");
  std::vector<Scatterer> scatterers;
  for (int i = 0; i < 20; ++i) {
    scatterers.push_back({{-15.0 + 1.5 * i, 10.0}, 12.0});
  }
  MultipathConfig cfg;
  cfg.max_paths = 6;
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const auto paths =
      enumerate_paths(plan, scatterers, pose, {5.0, -5.0}, cfg);
  EXPECT_LE(paths.size(), 6u);
  const double strongest = paths.front().gain_db;
  for (const auto& p : paths) {
    EXPECT_GE(p.gain_db, strongest - cfg.relative_floor_db - 1e-9);
  }
}

TEST(EnumeratePaths, SecondOrderReflectionInParallelWalls) {
  // Two parallel mirrors: the double bounce unfolds to a straight path of
  // known length. AP and target between walls at x = 0 and x = 10.
  FloorPlan plan;
  plan.add_wall({{{0.0, -50.0}, {0.0, 50.0}}, WallMaterial::metal(), "left"});
  plan.add_wall({{{10.0, -50.0}, {10.0, 50.0}}, WallMaterial::metal(),
                 "right"});
  const ArrayPose pose{{4.0, 0.0}, kPi / 2.0};
  const Vec2 target{6.0, 0.5};

  MultipathConfig off;
  off.relative_floor_db = 60.0;
  const auto first_only = enumerate_paths(plan, {}, pose, target, off);

  MultipathConfig on = off;
  on.second_order_reflections = true;
  on.max_paths = 16;
  const auto with_second = enumerate_paths(plan, {}, pose, target, on);
  EXPECT_GT(with_second.size(), first_only.size());

  // Expected double-bounce (left then right): mirror target across x=0
  // -> (-6, 0.5); across x=10 -> (26, 0.5); length |(26,0.5)-(4,0)|.
  const double expected_len = std::hypot(26.0 - 4.0, 0.5);
  const double expected_tof = expected_len / kSpeedOfLight;
  bool found = false;
  for (const auto& p : with_second) {
    if (std::abs(p.tof_s - expected_tof) < 1e-12) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(EnumeratePaths, SecondOrderWeakerThanFirstOrder) {
  FloorPlan plan;
  plan.add_rectangle({-10.0, -10.0}, {10.0, 10.0}, WallMaterial::drywall(),
                     "room");
  MultipathConfig cfg;
  cfg.second_order_reflections = true;
  cfg.max_paths = 32;
  cfg.relative_floor_db = 80.0;
  const ArrayPose pose{{-5.0, 0.0}, 0.0};
  const auto paths = enumerate_paths(plan, {}, pose, {5.0, 1.0}, cfg);
  // Order by ToF: the direct path is earliest; every double-bounce is
  // both later and weaker than the single bounce off the same wall pair
  // geometry (longer + extra reflection loss).
  const auto& direct = *std::find_if(
      paths.begin(), paths.end(),
      [](const PathComponent& p) { return p.is_direct; });
  for (const auto& p : paths) {
    if (!p.is_direct) {
      EXPECT_LT(p.gain_db, direct.gain_db);
      EXPECT_GT(p.tof_s, direct.tof_s);
    }
  }
}

TEST(PathComponent, ComplexGainMagnitude) {
  PathComponent p;
  p.gain_db = -20.0;
  p.phase_rad = kPi / 3.0;
  const cplx g = p.complex_gain();
  EXPECT_NEAR(std::abs(g), 0.1, 1e-12);
  EXPECT_NEAR(std::arg(g), kPi / 3.0, 1e-12);
}

// --- CSI synthesis ---

CsiSynthesizer make_clean_synth() {
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.max_snr_db = 200.0;
  imp.noise_floor_dbm = -300.0;  // effectively noiseless
  imp.rssi_shadowing_db = 0.0;
  imp.indirect_phase_jitter_rad = 0.0;
  imp.indirect_gain_jitter_db = 0.0;
  imp.indirect_tof_jitter_s = 0.0;
  imp.indirect_aoa_jitter_rad = 0.0;
  return {LinkConfig::intel5300_40mhz(), imp};
}

TEST(CsiSynthesis, SinglePathIdealCsiMatchesModel) {
  const auto synth = make_clean_synth();
  const LinkConfig& link = synth.link();
  PathComponent p;
  p.aoa_rad = deg_to_rad(30.0);
  p.tof_s = 25e-9;
  p.gain_db = -10.0;
  p.phase_rad = 0.7;
  const CMatrix csi = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  ASSERT_EQ(csi.rows(), 3u);
  ASSERT_EQ(csi.cols(), 30u);
  // Check a couple of entries against the closed-form model.
  const double phi_arg = -2.0 * kPi * link.antenna_spacing_m *
                         std::sin(p.aoa_rad) * link.carrier_hz /
                         kSpeedOfLight;
  const double omega_arg =
      -2.0 * kPi * link.subcarrier_spacing_hz * p.tof_s;
  const cplx gamma = p.complex_gain();
  for (const auto& [m, n] : std::vector<std::pair<int, int>>{
           {0, 0}, {1, 0}, {0, 1}, {2, 29}, {1, 17}}) {
    const cplx expected =
        gamma * std::polar(1.0, phi_arg * m + omega_arg * n);
    EXPECT_NEAR(std::abs(csi(m, n) - expected), 0.0, 1e-12)
        << "m=" << m << " n=" << n;
  }
}

TEST(CsiSynthesis, SuperpositionOfPaths) {
  const auto synth = make_clean_synth();
  PathComponent p1, p2;
  p1.aoa_rad = deg_to_rad(10.0);
  p1.tof_s = 20e-9;
  p1.gain_db = -5.0;
  p2.aoa_rad = deg_to_rad(-40.0);
  p2.tof_s = 60e-9;
  p2.gain_db = -9.0;
  const std::vector<PathComponent> both{p1, p2};
  const CMatrix c1 = synth.ideal_csi(std::span<const PathComponent>(&p1, 1));
  const CMatrix c2 = synth.ideal_csi(std::span<const PathComponent>(&p2, 1));
  const CMatrix c12 = synth.ideal_csi(both);
  EXPECT_LT((c12 - (c1 + c2)).max_abs(), 1e-12);
}

TEST(CsiSynthesis, CleanPacketEqualsIdealCsi) {
  const auto synth = make_clean_synth();
  PathComponent p;
  p.aoa_rad = 0.2;
  p.tof_s = 40e-9;
  p.gain_db = -3.0;
  Rng rng(1);
  const auto packet =
      synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
  const CMatrix ideal = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  EXPECT_LT((packet.csi - ideal).max_abs(), 1e-9);
}

TEST(CsiSynthesis, StoShiftsPhaseSlopeAcrossSubcarriers) {
  ImpairmentConfig imp;
  imp.sto_base_s = 50e-9;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.max_snr_db = 200.0;
  imp.noise_floor_dbm = -300.0;
  imp.indirect_phase_jitter_rad = 0.0;
  imp.indirect_gain_jitter_db = 0.0;
  imp.indirect_tof_jitter_s = 0.0;
  imp.indirect_aoa_jitter_rad = 0.0;
  const CsiSynthesizer synth(LinkConfig::intel5300_40mhz(), imp);

  PathComponent p;
  p.tof_s = 30e-9;
  p.gain_db = 0.0;
  Rng rng(2);
  const auto packet =
      synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
  // Phase slope across subcarriers should reflect tof + sto = 80 ns.
  const double slope = std::arg(packet.csi(0, 1) / packet.csi(0, 0));
  const double expected =
      -2.0 * kPi * synth.link().subcarrier_spacing_hz * 80e-9;
  EXPECT_NEAR(slope, expected, 1e-9);
}

TEST(CsiSynthesis, QuantizationBoundsRelativeError) {
  ImpairmentConfig imp;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = true;
  imp.max_snr_db = 200.0;
  imp.noise_floor_dbm = -300.0;
  imp.indirect_phase_jitter_rad = 0.0;
  imp.indirect_gain_jitter_db = 0.0;
  imp.indirect_tof_jitter_s = 0.0;
  imp.indirect_aoa_jitter_rad = 0.0;
  const CsiSynthesizer synth(LinkConfig::intel5300_40mhz(), imp);
  PathComponent p;
  p.tof_s = 30e-9;
  p.gain_db = -10.0;
  Rng rng(3);
  const auto packet =
      synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
  std::vector<PathComponent> shifted{p};
  shifted[0].tof_s += imp.sto_base_s;
  const CMatrix ideal = synth.ideal_csi(shifted);
  // Each I/Q component is quantized to ~114 levels of the max component:
  // relative error per entry bounded by ~1%.
  EXPECT_LT((packet.csi - ideal).max_abs(), 0.02 * ideal.max_abs());
  EXPECT_GT((packet.csi - ideal).max_abs(), 0.0);  // quantization happened
}

TEST(CsiSynthesis, RssiTracksReceivedPower) {
  auto synth = make_clean_synth();
  PathComponent p;
  p.gain_db = -60.0;
  p.tof_s = 50e-9;
  Rng rng(4);
  const auto packet =
      synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
  EXPECT_NEAR(packet.rssi_dbm,
              synth.impairments().tx_power_dbm + p.gain_db, 1e-9);
}

TEST(CsiSynthesis, BurstTimestampsAreSpaced) {
  const auto synth = make_clean_synth();
  PathComponent p;
  p.gain_db = -40.0;
  Rng rng(5);
  const auto burst = synth.synthesize_burst(
      std::span<const PathComponent>(&p, 1), 5, 0.1, rng);
  ASSERT_EQ(burst.size(), 5u);
  for (std::size_t i = 0; i < burst.size(); ++i) {
    EXPECT_NEAR(burst[i].timestamp_s, 0.1 * static_cast<double>(i), 1e-12);
  }
}

TEST(CsiSynthesis, NoiseScalesWithWeakSignal) {
  ImpairmentConfig imp;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.max_snr_db = 60.0;
  imp.indirect_phase_jitter_rad = 0.0;
  imp.indirect_gain_jitter_db = 0.0;
  imp.indirect_tof_jitter_s = 0.0;
  imp.indirect_aoa_jitter_rad = 0.0;
  const CsiSynthesizer synth(LinkConfig::intel5300_40mhz(), imp);
  PathComponent strong, weak;
  strong.gain_db = -40.0;  // SNR ~ 67 dB capped to 60
  weak.gain_db = -95.0;    // SNR ~ 12 dB
  strong.tof_s = weak.tof_s = 30e-9;

  auto rel_error = [&](const PathComponent& p, std::uint64_t seed) {
    Rng rng(seed);
    const auto packet =
        synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
    std::vector<PathComponent> shifted{p};
    shifted[0].tof_s += imp.sto_base_s;
    const CMatrix ideal = synth.ideal_csi(shifted);
    return (packet.csi - ideal).frobenius_norm() / ideal.frobenius_norm();
  };
  EXPECT_LT(rel_error(strong, 6), 0.01);
  EXPECT_GT(rel_error(weak, 7), 0.05);
}

}  // namespace
}  // namespace spotfi
