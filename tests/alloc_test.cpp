// The zero-allocation contract of the estimation hot path (DESIGN.md
// §11): after the scratch arena has warmed up, pushing one packet through
// the sanitize -> smoothing -> covariance -> eigendecomposition ->
// pseudo-spectrum -> peaks stage performs ZERO heap allocations, and a
// packet group's allocation count is a constant plus the per-group slot
// buffers — independent of how many packets the group holds.
//
// The counter lives in global operator new/delete overrides local to this
// test binary. That makes the assertions exact, not statistical: a single
// stray std::vector on the packet path turns the steady-state count
// nonzero and fails loudly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "channel/multipath.hpp"
#include "common/workspace.hpp"
#include "core/ap_processor.hpp"
#include "geom/floorplan.hpp"
#include "pipeline/stages.hpp"

// --- counting allocator -----------------------------------------------

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_allocated_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

std::size_t allocations() {
  return g_allocations.load(std::memory_order_relaxed);
}

std::vector<CsiPacket> synthesize_group(std::size_t n_packets,
                                        unsigned seed = 11) {
  FloorPlan plan;
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const Vec2 target{8.0, 2.0};
  MultipathConfig mp;
  const auto paths = enumerate_paths(plan, {}, pose, target, mp);
  const CsiSynthesizer synth(kLink, ImpairmentConfig{});
  Rng rng(seed);
  return synth.synthesize_burst(paths, n_packets, 0.1, rng);
}

// --- the contract ------------------------------------------------------

TEST(ZeroAlloc, SteadyStatePacketAllocatesNothing) {
  const auto packets = synthesize_group(4);
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0}, {});

  Workspace ws;
  std::vector<PathEstimate> out(processor.max_paths());

  // Warm-up: the first packet grows the arena block by block.
  (void)processor.estimate_packet(packets[0], ws, out);
  ws.reset();  // coalesce into one contiguous block
  (void)processor.estimate_packet(packets[1], ws, out);

  const WorkspaceStats warmed = ws.stats();
  const std::size_t before = allocations();
  for (std::size_t i = 0; i < packets.size(); ++i) {
    const std::size_t n = processor.estimate_packet(packets[i], ws, out);
    EXPECT_GT(n, 0u);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "the estimation path touched the heap after warm-up";

  // The arena itself must not have grown either.
  const WorkspaceStats after = ws.stats();
  EXPECT_EQ(after.block_allocations, warmed.block_allocations);
  EXPECT_EQ(after.capacity_bytes, warmed.capacity_bytes);
}

TEST(ZeroAlloc, EspritSteadyStatePacketAllocatesNothing) {
  const auto packets = synthesize_group(4);
  ApProcessorConfig cfg;
  cfg.front_end = FrontEnd::kEsprit;
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0}, cfg);

  Workspace ws;
  std::vector<PathEstimate> out(processor.max_paths());
  (void)processor.estimate_packet(packets[0], ws, out);
  ws.reset();
  (void)processor.estimate_packet(packets[1], ws, out);

  const std::size_t before = allocations();
  for (const auto& packet : packets) {
    (void)processor.estimate_packet(packet, ws, out);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "the ESPRIT estimation path touched the heap after warm-up";
}

TEST(ZeroAlloc, GroupAllocationCountIndependentOfGroupSize) {
  // process() allocates per *group* (output slots, pooled estimates,
  // cluster summaries), never per packet: the marginal allocation cost of
  // 10 extra packets must be zero beyond the linear slot-buffer resize.
  // Comparing two group sizes with warmed arenas makes that observable
  // without hard-coding the per-group constant.
  const auto group_small = synthesize_group(10);
  const auto group_large = synthesize_group(20);
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0}, {});
  Rng rng(3);

  // Warm the calling thread's arena with the larger group.
  (void)processor.process(group_large, rng);
  thread_workspace().reset();
  (void)processor.process(group_large, rng);

  const std::size_t before_small = allocations();
  (void)processor.process(group_small, rng);
  const std::size_t count_small = allocations() - before_small;

  const std::size_t before_large = allocations();
  (void)processor.process(group_large, rng);
  const std::size_t count_large = allocations() - before_large;

  // The only size-dependent allocations are the group's slot/pool
  // vectors (a constant *number* of allocations of size-dependent
  // length) — so the allocation *count* must match exactly.
  EXPECT_EQ(count_small, count_large)
      << "per-packet heap allocations crept into the group pipeline";
}

TEST(ZeroAlloc, ArenaHighWaterMarkIsPinned) {
  // The per-packet footprint of the default MUSIC configuration. A
  // regression here means a buffer moved onto the arena (fine, update the
  // bound) or a config change exploded the grid (worth noticing either
  // way). Default grid: 181 x 320 spectrum (~463 KiB) + steering
  // projections + smoothing/eigen scratch.
  const auto packets = synthesize_group(2);
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0}, {});
  Workspace ws;
  std::vector<PathEstimate> out(processor.max_paths());
  (void)processor.estimate_packet(packets[0], ws, out);
  (void)processor.estimate_packet(packets[1], ws, out);

  const WorkspaceStats stats = ws.stats();
  EXPECT_GT(stats.high_water_bytes, 500u * 1024u);  // the spectrum alone
  EXPECT_LT(stats.high_water_bytes, 4u * 1024u * 1024u)
      << "per-packet arena footprint exploded: " << stats.high_water_bytes;
  EXPECT_EQ(stats.used_bytes, 0u);  // frames rewound cleanly
}

TEST(ZeroAlloc, StagedPacketPathAllocatesNothing) {
  // The same contract through the typed stage interfaces directly
  // (DESIGN.md §15): sanitize -> smoothing -> subspace -> spectrum as
  // individual Stage::run_into calls, WITH the telemetry sink armed —
  // neither the virtual-dispatch boundary nor the StageMeter may touch
  // the heap after warm-up.
  const auto packets = synthesize_group(4);
  const JointMusicEstimator est(kLink, JointMusicConfig{});
  const SanitizeStage sanitize(kLink, true);
  const MusicEstimateStage music(est);

  Workspace ws;
  std::vector<PathEstimate> out(est.config().max_paths);
  StageBreakdown breakdown;

  auto run_packet = [&](const CsiPacket& packet) {
    Workspace::Frame frame(ws);
    StageContext ctx;
    ctx.ws = &ws;
    ctx.breakdown = &breakdown;
    ctx.frame = &frame;
    const ConstCMatrixView csi =
        sanitize.run_into(ctx, ConstCMatrixView(packet.csi));
    return music.run_into(ctx, csi, out);
  };

  (void)run_packet(packets[0]);
  ws.reset();
  (void)run_packet(packets[1]);

  const std::size_t before = allocations();
  for (const auto& packet : packets) {
    EXPECT_GT(run_packet(packet), 0u);
  }
  EXPECT_EQ(allocations() - before, 0u)
      << "the staged estimation path touched the heap after warm-up";
  EXPECT_TRUE(breakdown.any());
}

TEST(ZeroAlloc, WorkspacePeakTelemetryRidesApOutcome) {
  const auto packets = synthesize_group(6);
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0}, {});
  Rng rng(5);
  const ApOutcome outcome = processor.process_robust(packets, rng);
  ASSERT_TRUE(outcome.usable);
  EXPECT_EQ(outcome.stage, ApStage::kPrimary);
  EXPECT_GT(outcome.workspace_peak_bytes, 500u * 1024u);
  EXPECT_LT(outcome.workspace_peak_bytes, 4u * 1024u * 1024u);
}

}  // namespace
}  // namespace spotfi
