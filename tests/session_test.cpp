// Tests for the multi-tenant session layer: admission verdicts, bounded
// ingest queues, the load-shedding fidelity ladder, deadline planning,
// telemetry accounting, and the byte-identical-acceptance contract
// against the single-tenant streaming path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/session_manager.hpp"
#include "testbed/deployment.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

/// Simulated feed: one office target, packets interleaved across APs.
struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;

  explicit Feed(std::size_t packets, Vec2 target = {6.0, 3.5})
      : runner(kLink, office_deployment(), make_config(packets)) {
    Rng rng(11);
    captures = runner.simulate_captures(target, rng);
  }
  static ExperimentConfig make_config(std::size_t packets) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    return config;
  }
  [[nodiscard]] std::vector<ArrayPose> poses() const {
    std::vector<ArrayPose> out;
    for (const auto& capture : captures) out.push_back(capture.pose);
    return out;
  }
};

SessionConfig base_session(const Feed& feed, std::size_t group_size) {
  SessionConfig cfg;
  cfg.streaming.group_size = group_size;
  cfg.streaming.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.streaming.server.localizer.area_max = feed.runner.deployment().area_max;
  cfg.aps = feed.poses();
  cfg.seed = 77;
  return cfg;
}

// --- lifecycle and contracts ---

TEST(SessionManager, OpenRequiresTwoAps) {
  SessionManager manager(kLink);
  SessionConfig cfg;
  cfg.aps.resize(1);
  EXPECT_THROW((void)manager.open_session(cfg), ContractViolation);
  EXPECT_EQ(manager.session_count(), 0u);
}

TEST(SessionManager, UnknownSessionIdThrowsEverywhere) {
  SessionManager manager(kLink);
  Rng rng(1);
  EXPECT_THROW((void)manager.offer(42, 0, CsiPacket{}), ContractViolation);
  EXPECT_THROW((void)manager.pump(42), ContractViolation);
  EXPECT_THROW((void)manager.poll(42, 0.0), ContractViolation);
  EXPECT_THROW((void)manager.session_stats(42), ContractViolation);
  EXPECT_THROW((void)manager.localizer(42), ContractViolation);
  EXPECT_THROW(manager.close_session(42), ContractViolation);
}

TEST(SessionManager, IdsAreNeverReused) {
  Feed feed(2);
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId a = manager.open_session(base_session(feed, 4));
  manager.close_session(a);
  const SessionId b = manager.open_session(base_session(feed, 4));
  EXPECT_NE(a, b);
  EXPECT_EQ(manager.session_count(), 1u);
}

// --- admission control ---

TEST(SessionAdmission, VerdictsGradeOccupancyAndFullQueueSheds) {
  Feed feed(2);
  SessionConfig cfg = base_session(feed, 1000);  // rounds never fire
  cfg.overload.queue_capacity = 8;
  cfg.overload.degrade_coarse_at = 0.50;   // depth >= 4
  cfg.overload.degrade_esprit_at = 0.75;   // depth >= 6
  cfg.overload.degrade_rssi_at = 0.90;     // depth >= 8 (ceil(7.2))
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);

  // Fill the queue without pumping; the entitlement must degrade
  // monotonically with depth and the 9th packet must shed.
  std::vector<AdmissionVerdict> verdicts;
  for (int i = 0; i < 10; ++i) {
    verdicts.push_back(
        manager.offer(id, 0, feed.captures[0].packets[0]));
  }
  // Depth observed before each push: 0..9.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(verdicts[i].kind, AdmissionVerdict::Kind::kAccepted) << i;
    EXPECT_EQ(verdicts[i].level, ShedLevel::kFull) << i;
  }
  EXPECT_EQ(verdicts[4].kind, AdmissionVerdict::Kind::kDegraded);
  EXPECT_EQ(verdicts[4].level, ShedLevel::kCoarse);
  EXPECT_EQ(verdicts[6].level, ShedLevel::kEsprit);
  EXPECT_EQ(verdicts[8].kind, AdmissionVerdict::Kind::kShed);
  EXPECT_FALSE(verdicts[8].admitted());
  EXPECT_EQ(verdicts[9].kind, AdmissionVerdict::Kind::kShed);

  // Monotone degradation: entitlement never upgrades as depth rises.
  for (std::size_t i = 1; i < verdicts.size(); ++i) {
    EXPECT_GE(verdicts[i].level, verdicts[i - 1].level) << i;
  }

  const SessionStats stats = manager.session_stats(id);
  EXPECT_EQ(stats.offered, 10u);
  EXPECT_EQ(stats.accepted, 8u);
  EXPECT_EQ(stats.shed_packets, 2u);
  EXPECT_EQ(stats.offered, stats.accepted + stats.shed_packets);
  EXPECT_EQ(stats.degraded_admissions, 4u);  // depths 4..7
  EXPECT_EQ(stats.queue_high_water, 8u);
  EXPECT_LE(stats.queue_high_water, stats.queue_capacity);
}

// --- accepted rounds are byte-identical to the single-tenant path ---

TEST(SessionDeterminism, AcceptedFixesMatchStandaloneAtAnyThreadCount) {
  unsetenv("SPOTFI_THREADS");
  constexpr std::size_t kGroup = 4;
  Feed feed(kGroup);

  // Reference: a standalone single-tenant StreamingLocalizer, serial.
  std::vector<Vec2> reference;
  {
    StreamingConfig cfg;
    cfg.group_size = kGroup;
    cfg.server.num_threads = 1;
    cfg.server.localizer.area_min = feed.runner.deployment().area_min;
    cfg.server.localizer.area_max = feed.runner.deployment().area_max;
    StreamingLocalizer standalone(kLink, cfg);
    for (const auto& capture : feed.captures) standalone.add_ap(capture.pose);
    Rng rng(77);  // == SessionConfig::seed below
    for (std::size_t p = 0; p < kGroup; ++p) {
      for (std::size_t a = 0; a < feed.captures.size(); ++a) {
        if (auto fix = standalone.push(a, feed.captures[a].packets[p], rng)) {
          reference.push_back(fix->raw);
        }
      }
    }
    ASSERT_EQ(reference.size(), 1u);
  }

  // The same stream through a session, serial and parallel. Pumping
  // after every offer keeps the queue shallow, so every round is
  // admitted at full fidelity — the accepted path.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    SessionManagerConfig mgr_cfg;
    mgr_cfg.num_threads = threads;
    SessionManager manager(kLink, mgr_cfg);
    const SessionId id = manager.open_session(base_session(feed, kGroup));
    std::vector<LocationFix> fixes;
    for (std::size_t p = 0; p < kGroup; ++p) {
      for (std::size_t a = 0; a < feed.captures.size(); ++a) {
        const auto verdict =
            manager.offer(id, a, feed.captures[a].packets[p]);
        ASSERT_EQ(verdict.kind, AdmissionVerdict::Kind::kAccepted);
        for (auto& fix : manager.pump(id)) fixes.push_back(std::move(fix));
      }
    }
    ASSERT_EQ(fixes.size(), reference.size()) << threads << " threads";
    for (std::size_t i = 0; i < fixes.size(); ++i) {
      // Bitwise equality: the multi-tenant accepted path must not
      // reorder a single floating-point operation.
      EXPECT_EQ(fixes[i].raw.x, reference[i].x) << threads << " threads";
      EXPECT_EQ(fixes[i].raw.y, reference[i].y) << threads << " threads";
      EXPECT_EQ(fixes[i].round.fidelity, ShedLevel::kFull);
    }
    const SessionStats stats = manager.session_stats(id);
    EXPECT_EQ(stats.rounds_full, 1u);
    EXPECT_EQ(stats.rounds_degraded, 0u);
    EXPECT_EQ(stats.rounds_shed, 0u);
    EXPECT_EQ(stats.fixes, 1u);
  }
}

// --- backlog degrades fidelity, and the books balance ---

TEST(SessionOverload, BacklogDegradesRoundsAndCountersAccount) {
  constexpr std::size_t kGroup = 3;
  Feed feed(3 * kGroup);
  SessionConfig cfg = base_session(feed, kGroup);
  // Any backlog at all entitles only coarse fidelity and below.
  cfg.overload.queue_capacity = 256;
  cfg.overload.degrade_coarse_at = 0.0;
  cfg.overload.degrade_esprit_at = 1.0;
  cfg.overload.degrade_rssi_at = 1.0;
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);

  // Offer three full rounds' worth of packets before pumping once: at
  // every round-fire the queue still holds a backlog, so every round
  // must run degraded (coarse), and the fixes must say so.
  for (std::size_t p = 0; p < 3 * kGroup; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      const auto verdict = manager.offer(id, a, feed.captures[a].packets[p]);
      ASSERT_TRUE(verdict.admitted());
    }
  }
  std::vector<LocationFix> fixes;
  for (auto& fix : manager.pump(id)) fixes.push_back(std::move(fix));

  const SessionStats stats = manager.session_stats(id);
  // The first two rounds fire with a backlog still queued behind them —
  // degraded. The third fires on the very last pop, backlog drained —
  // full fidelity again (the ladder recovers when pressure does).
  EXPECT_EQ(stats.rounds_degraded, 2u);
  EXPECT_EQ(stats.rounds_full, 1u);
  EXPECT_EQ(stats.rounds_shed, 0u);
  EXPECT_EQ(stats.failed_rounds, 0u);
  // Every planned round is exactly one of full/degraded/shed, and the
  // degraded counter accounts for exactly the non-full fixes.
  EXPECT_EQ(stats.fixes + stats.failed_rounds,
            stats.rounds_full + stats.rounds_degraded);
  EXPECT_EQ(stats.fixes, fixes.size());
  std::size_t non_full = 0;
  for (const auto& fix : fixes) {
    if (fix.round.fidelity != ShedLevel::kFull) {
      ++non_full;
      EXPECT_TRUE(fix.degraded);
      EXPECT_EQ(fix.round.fidelity, ShedLevel::kCoarse);
    }
  }
  EXPECT_EQ(non_full, stats.rounds_degraded);
  EXPECT_LE(stats.queue_high_water, stats.queue_capacity);
}

// --- deadline planning with a fake clock ---

TEST(SessionDeadline, UnaffordableFullFidelityDegradesUpFront) {
  constexpr std::size_t kGroup = 4;
  Feed feed(kGroup);
  SessionConfig cfg = base_session(feed, kGroup);
  cfg.overload.round_deadline_s = 0.06;
  // Deterministic cost model: full and coarse can't meet the deadline,
  // ESPRIT can. (With a FakeClock nothing is ever measured, so the
  // seeds are the whole model until a round observes dt >= 0.)
  cfg.overload.seed_cost_s = {0.2, 0.1, 0.05, 0.01};
  FakeClock clock(0.0);
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  mgr_cfg.clock = &clock;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);

  std::vector<LocationFix> fixes;
  for (std::size_t p = 0; p < kGroup; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      (void)manager.offer(id, a, feed.captures[a].packets[p]);
      for (auto& fix : manager.pump(id)) fixes.push_back(std::move(fix));
    }
  }
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes.front().round.fidelity, ShedLevel::kEsprit);
  const SessionStats stats = manager.session_stats(id);
  EXPECT_EQ(stats.deadline_limited_rounds, 1u);
  EXPECT_EQ(stats.rounds_degraded, 1u);
  EXPECT_EQ(stats.rounds_shed, 0u);
  // The FakeClock never advanced, so the measured duration (0) met the
  // deadline: no miss.
  EXPECT_EQ(stats.deadline_misses, 0u);
}

TEST(SessionDeadline, UnmeetableDeadlineShedsTheRoundUpFront) {
  constexpr std::size_t kGroup = 4;
  Feed feed(kGroup);
  SessionConfig cfg = base_session(feed, kGroup);
  cfg.overload.round_deadline_s = 0.005;
  cfg.overload.seed_cost_s = {0.2, 0.1, 0.05, 0.01};  // even RSSI: 10 ms
  FakeClock clock(0.0);
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  mgr_cfg.clock = &clock;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);

  std::size_t fixes = 0;
  for (std::size_t p = 0; p < kGroup; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      (void)manager.offer(id, a, feed.captures[a].packets[p]);
      fixes += manager.pump(id).size();
    }
  }
  // The round was rejected up front — consumed, never run late.
  EXPECT_EQ(fixes, 0u);
  const SessionStats stats = manager.session_stats(id);
  EXPECT_EQ(stats.rounds_shed, 1u);
  EXPECT_EQ(stats.deadline_limited_rounds, 1u);
  EXPECT_EQ(stats.rounds_full, 0u);
  EXPECT_EQ(stats.rounds_degraded, 0u);
  // The backlog was still drained.
  const auto& localizer = manager.localizer(id);
  for (std::size_t a = 0; a < localizer.ap_count(); ++a) {
    EXPECT_EQ(localizer.buffered(a), 0u);
  }
}

TEST(SessionDeadline, MeasuredOverrunCountsAsMissAndRetrainsTheModel) {
  constexpr std::size_t kGroup = 4;
  Feed feed(kGroup);
  SessionConfig cfg = base_session(feed, kGroup);
  cfg.overload.round_deadline_s = 0.5;
  cfg.overload.seed_cost_s = {0.1, 0.05, 0.02, 0.01};  // all look affordable
  // Auto-advance: every clock sample steps time by 1 s, so each round
  // "measures" exactly one step between its start and end stamps —
  // double the budget, deterministically.
  FakeClock clock(0.0);
  clock.set_auto_advance(1.0);
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  mgr_cfg.clock = &clock;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);

  auto run_round = [&] {
    std::vector<LocationFix> fixes;
    for (std::size_t p = 0; p < kGroup; ++p) {
      for (std::size_t a = 0; a < feed.captures.size(); ++a) {
        (void)manager.offer(id, a, feed.captures[a].packets[p]);
        for (auto& fix : manager.pump(id)) fixes.push_back(std::move(fix));
      }
    }
    return fixes;
  };

  // Round 1: the seeds said full fidelity fits, so the plan approves it
  // — but the measured duration (1 s) blows the 0.5 s budget. That is a
  // deadline miss, recorded, and the cost model now knows better.
  auto fixes = run_round();
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_EQ(fixes.front().round.fidelity, ShedLevel::kFull);
  SessionStats stats = manager.session_stats(id);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_EQ(stats.deadline_limited_rounds, 0u);

  // Round 2: full fidelity now estimates ~1 s > 0.5 s, so the planner
  // degrades up front instead of running late again.
  fixes = run_round();
  ASSERT_EQ(fixes.size(), 1u);
  EXPECT_NE(fixes.front().round.fidelity, ShedLevel::kFull);
  stats = manager.session_stats(id);
  EXPECT_EQ(stats.deadline_limited_rounds, 1u);
  EXPECT_EQ(stats.rounds_degraded, 1u);
}

// --- FakeClock scheduling helpers (the machinery the deadline tests
// above and the transport chaos harness lean on) ---

TEST(FakeClockSchedule, CallbacksFireInTimeOrderAtTheirOwnTimestamps) {
  FakeClock clock(0.0);
  std::vector<std::pair<double, double>> fired;  // (scheduled at, now seen)
  clock.schedule(3.0, [&] { fired.emplace_back(3.0, clock.now_s()); });
  clock.schedule(1.0, [&] { fired.emplace_back(1.0, clock.now_s()); });
  clock.schedule(2.0, [&] { fired.emplace_back(2.0, clock.now_s()); });

  clock.advance_to(2.5);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], (std::pair<double, double>{1.0, 1.0}));
  EXPECT_EQ(fired[1], (std::pair<double, double>{2.0, 2.0}));
  EXPECT_DOUBLE_EQ(clock.now_s(), 2.5);

  clock.advance(1.0);  // 2.5 -> 3.5 crosses the 3.0 callback
  ASSERT_EQ(fired.size(), 3u);
  EXPECT_EQ(fired[2], (std::pair<double, double>{3.0, 3.0}));
  EXPECT_DOUBLE_EQ(clock.now_s(), 3.5);
}

TEST(FakeClockSchedule, CallbacksMayScheduleWithinTheTraversedSpan) {
  FakeClock clock(0.0);
  std::vector<double> fired;
  clock.schedule(1.0, [&] {
    fired.push_back(clock.now_s());
    clock.schedule(1.5, [&] { fired.push_back(clock.now_s()); });
  });
  clock.advance_to(2.0);
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_DOUBLE_EQ(fired[0], 1.0);
  EXPECT_DOUBLE_EQ(fired[1], 1.5);
  EXPECT_DOUBLE_EQ(clock.now_s(), 2.0);
}

TEST(FakeClockSchedule, AutoAdvanceStepsPerReadAndDisables) {
  FakeClock clock(0.0);
  clock.set_auto_advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now_s(), 0.0);  // post-increment semantics
  EXPECT_DOUBLE_EQ(clock.now_s(), 0.5);
  clock.set_auto_advance(0.0);
  EXPECT_DOUBLE_EQ(clock.now_s(), 1.0);
  EXPECT_DOUBLE_EQ(clock.now_s(), 1.0);
}

// --- stats folding across sessions ---

TEST(SessionStatsFold, CloseRetiresCountersIntoGlobalTotals) {
  Feed feed(2);
  SessionConfig cfg = base_session(feed, 1000);  // rounds never fire
  cfg.overload.queue_capacity = 4;
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId a = manager.open_session(cfg);
  const SessionId b = manager.open_session(cfg);

  for (int i = 0; i < 6; ++i) {  // 4 accepted + 2 shed per session
    (void)manager.offer(a, 0, feed.captures[0].packets[0]);
    (void)manager.offer(b, 0, feed.captures[0].packets[0]);
  }
  const SessionStats sa = manager.session_stats(a);
  EXPECT_EQ(sa.accepted, 4u);
  EXPECT_EQ(sa.shed_packets, 2u);

  SessionStats global = manager.global_stats();
  EXPECT_EQ(global.offered, 12u);
  EXPECT_EQ(global.accepted, 8u);
  EXPECT_EQ(global.shed_packets, 4u);

  manager.close_session(a);
  EXPECT_EQ(manager.session_count(), 1u);
  global = manager.global_stats();  // retired + live must still add up
  EXPECT_EQ(global.offered, 12u);
  EXPECT_EQ(global.accepted, 8u);
  EXPECT_EQ(global.shed_packets, 4u);
  EXPECT_THROW((void)manager.session_stats(a), ContractViolation);
}

TEST(SessionStatsFold, CloseRacingFinalPumpRetiresExactlyOnce) {
  // A consumer thread pumps while the session closes under it: whichever
  // side wins, the session's counters must fold into the global totals
  // exactly once, and re-closing the already-closed id stays a no-op.
  Feed feed(2);
  SessionConfig cfg = base_session(feed, 1000);  // rounds never fire
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);
  constexpr std::size_t kOffers = 8;
  for (std::size_t i = 0; i < kOffers; ++i) {
    ASSERT_TRUE(manager.offer(id, 0, feed.captures[0].packets[0]).admitted());
  }

  std::atomic<bool> go{false};
  std::thread pumper([&] {
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    // The pump may land before, during, or after the close; a closed id
    // throws, which simply ends the race.
    try {
      for (int i = 0; i < 64; ++i) (void)manager.pump(id);
    } catch (const ContractViolation&) {
    }
  });
  go.store(true, std::memory_order_release);
  manager.close_session(id);
  pumper.join();

  // Exactly-once retirement: the offered/accepted counters appear once
  // in the global aggregate, no matter how the race resolved.
  SessionStats global = manager.global_stats();
  EXPECT_EQ(global.offered, kOffers);
  EXPECT_EQ(global.accepted, kOffers);
  EXPECT_EQ(manager.session_count(), 0u);
  // Idempotent close: a second (and third) close of the same id is a
  // no-op, never a double retirement.
  manager.close_session(id);
  manager.close_session(id);
  global = manager.global_stats();
  EXPECT_EQ(global.offered, kOffers);
  EXPECT_EQ(global.accepted, kOffers);
}

}  // namespace
}  // namespace spotfi
