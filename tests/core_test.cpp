// Tests for the SpotFi pipeline core: Eq. 8 clustering/likelihoods, the
// selection rules of Fig. 8(b), the per-AP processor, and the server.
#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "common/stats.hpp"
#include "core/server.hpp"
#include "core/tracker.hpp"
#include "testbed/deployment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

PathEstimate estimate(double aoa_deg, double tof_ns, double power = 1.0) {
  PathEstimate e;
  e.aoa_rad = deg_to_rad(aoa_deg);
  e.tof_s = tof_ns * 1e-9;
  e.power = power;
  return e;
}

/// Synthetic estimate pool: a tight early cluster (direct) and a loose
/// late one (reflection).
std::vector<PathEstimate> two_cluster_pool(Rng& rng, std::size_t n = 30) {
  std::vector<PathEstimate> pool;
  for (std::size_t i = 0; i < n; ++i) {
    pool.push_back(estimate(20.0 + rng.normal(0.0, 0.4),
                            30.0 + rng.normal(0.0, 1.0), 5.0));
    pool.push_back(estimate(-40.0 + rng.normal(0.0, 6.0),
                            150.0 + rng.normal(0.0, 25.0), 8.0));
  }
  return pool;
}

TEST(DirectPath, TightEarlyClusterWins) {
  Rng rng(1);
  const auto pool = two_cluster_pool(rng);
  DirectPathConfig cfg;
  cfg.n_clusters = 2;
  const auto clusters = cluster_path_estimates(pool, kLink, 30, rng, cfg);
  ASSERT_GE(clusters.size(), 2u);
  // Sorted by likelihood: the direct cluster (tight, early) first.
  EXPECT_NEAR(rad_to_deg(clusters[0].mean_aoa_rad), 20.0, 2.0);
  EXPECT_GT(clusters[0].likelihood, clusters[1].likelihood);
}

TEST(DirectPath, ClusterStatisticsAreCorrect) {
  // Two exact points per cluster: check the population statistics.
  std::vector<PathEstimate> pool{
      estimate(10.0, 40.0, 2.0), estimate(14.0, 60.0, 4.0)};
  Rng rng(2);
  DirectPathConfig cfg;
  cfg.n_clusters = 1;
  const auto clusters = cluster_path_estimates(pool, kLink, 30, rng, cfg);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0].count, 2u);
  EXPECT_NEAR(rad_to_deg(clusters[0].mean_aoa_rad), 12.0, 1e-6);
  EXPECT_NEAR(clusters[0].mean_tof_s * 1e9, 50.0, 1e-6);
  EXPECT_NEAR(clusters[0].mean_power, 3.0, 1e-9);
  // sigma_aoa: population stddev of normalized +-2 deg around the mean.
  EXPECT_NEAR(clusters[0].sigma_aoa, deg_to_rad(2.0) / (kPi / 2.0), 1e-9);
}

TEST(DirectPath, EmptyPoolThrows) {
  Rng rng(3);
  EXPECT_THROW(
      cluster_path_estimates({}, kLink, 1, rng, {}),
      ContractViolation);
}

TEST(DirectPath, KMeansVariantAlsoWorks) {
  Rng rng(4);
  const auto pool = two_cluster_pool(rng);
  DirectPathConfig cfg;
  cfg.n_clusters = 2;
  cfg.use_gmm = false;
  const auto clusters = cluster_path_estimates(pool, kLink, 30, rng, cfg);
  ASSERT_GE(clusters.size(), 2u);
  EXPECT_NEAR(rad_to_deg(clusters[0].mean_aoa_rad), 20.0, 2.0);
}

TEST(DirectPath, LikelihoodInvariantToCommonTofShift) {
  // The relative mean-ToF term makes the likelihood ranking invariant to
  // the arbitrary sanitization origin.
  Rng rng(5);
  auto pool = two_cluster_pool(rng);
  DirectPathConfig cfg;
  cfg.n_clusters = 2;
  Rng r1(6), r2(6);
  const auto base = cluster_path_estimates(pool, kLink, 30, r1, cfg);
  for (auto& e : pool) e.tof_s -= 200e-9;  // shift all ToFs
  const auto shifted = cluster_path_estimates(pool, kLink, 30, r2, cfg);
  ASSERT_EQ(base.size(), shifted.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(base[i].likelihood, shifted[i].likelihood,
                1e-6 * base[i].likelihood);
  }
}

TEST(Selection, RulesPickTheRightClusters) {
  std::vector<ClusterSummary> clusters(3);
  clusters[0].mean_aoa_rad = deg_to_rad(10.0);
  clusters[0].mean_tof_s = 50e-9;
  clusters[0].mean_power = 3.0;
  clusters[0].likelihood = 0.5;
  clusters[1].mean_aoa_rad = deg_to_rad(-30.0);
  clusters[1].mean_tof_s = 20e-9;  // earliest
  clusters[1].mean_power = 1.0;
  clusters[1].likelihood = 2.0;  // highest likelihood
  clusters[2].mean_aoa_rad = deg_to_rad(60.0);
  clusters[2].mean_tof_s = 90e-9;
  clusters[2].mean_power = 9.0;  // strongest
  clusters[2].likelihood = 1.0;

  EXPECT_EQ(select_spotfi(clusters), 1u);
  EXPECT_EQ(select_smallest_tof(clusters), 1u);
  EXPECT_EQ(select_strongest(clusters), 2u);
  EXPECT_EQ(select_oracle(clusters, deg_to_rad(55.0)), 2u);
  EXPECT_EQ(select_oracle(clusters, deg_to_rad(5.0)), 0u);
}

TEST(Selection, EmptyClustersThrow) {
  EXPECT_THROW(select_spotfi({}), ContractViolation);
  EXPECT_THROW(select_smallest_tof({}), ContractViolation);
  EXPECT_THROW(select_strongest({}), ContractViolation);
  EXPECT_THROW(select_oracle({}, 0.0), ContractViolation);
}

// --- ApProcessor on synthesized captures ---

TEST(ApProcessor, RecoversDirectPathOnCleanLink) {
  // Free-space link: the only path is direct; the processor must select
  // an AoA close to the geometric truth.
  FloorPlan plan;
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const Vec2 target{8.0, 2.0};
  MultipathConfig mp;
  const auto paths = enumerate_paths(plan, {}, pose, target, mp);
  ImpairmentConfig imp;
  const CsiSynthesizer synth(kLink, imp);
  Rng rng(7);
  const auto packets = synth.synthesize_burst(paths, 10, 0.1, rng);

  const ApProcessor processor(kLink, pose, {});
  const ApResult result = processor.process(packets, rng);
  EXPECT_NEAR(rad_to_deg(result.observation.direct_aoa_rad),
              rad_to_deg(pose.aoa_of(target)), 3.0);
  EXPECT_GT(result.observation.likelihood, 0.0);
  EXPECT_FALSE(result.pooled_estimates.empty());
  EXPECT_FALSE(result.clusters.empty());
}

TEST(ApProcessor, RssiIsAveraged) {
  FloorPlan plan;
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  MultipathConfig mp;
  const auto paths = enumerate_paths(plan, {}, pose, {5.0, 1.0}, mp);
  ImpairmentConfig imp;
  imp.rssi_shadowing_db = 0.0;
  const CsiSynthesizer synth(kLink, imp);
  Rng rng(8);
  const auto packets = synth.synthesize_burst(paths, 5, 0.1, rng);
  const ApProcessor processor(kLink, pose, {});
  const ApResult result = processor.process(packets, rng);
  EXPECT_NEAR(result.observation.rssi_dbm, packets[0].rssi_dbm, 1e-9);
}

TEST(ApProcessor, EmptyGroupThrows) {
  const ApProcessor processor(kLink, ArrayPose{}, {});
  Rng rng(9);
  EXPECT_THROW(processor.process({}, rng), ContractViolation);
}

// --- server end to end ---

TEST(Server, LocalizesCleanOfficeTarget) {
  const Deployment deployment = office_deployment();
  const Vec2 target{8.0, 5.5};
  MultipathConfig mp;
  ImpairmentConfig imp;
  const CsiSynthesizer synth(kLink, imp);
  Rng rng(10);
  std::vector<ApCapture> captures;
  for (const auto& pose : deployment.aps) {
    const auto paths = enumerate_paths(deployment.plan,
                                       deployment.scatterers, pose, target,
                                       mp);
    ApCapture c;
    c.pose = pose;
    Rng fork = rng.fork();
    c.packets = synth.synthesize_burst(paths, 12, 0.1, fork);
    captures.push_back(std::move(c));
  }
  ServerConfig config;
  config.localizer.area_min = deployment.area_min;
  config.localizer.area_max = deployment.area_max;
  const SpotFiServer server(kLink, config);
  const LocalizationRound round = server.localize(captures, rng);
  EXPECT_EQ(round.ap_results.size(), deployment.aps.size());
  EXPECT_LT(distance(round.location.position, target), 2.5);
}

TEST(Server, RequiresTwoAps) {
  const SpotFiServer server(kLink, {});
  std::vector<ApCapture> captures(1);
  Rng rng(11);
  EXPECT_THROW(server.localize(captures, rng), ContractViolation);
}

// --- location tracker ---

TEST(Tracker, FirstFixInitializes) {
  LocationTracker tracker;
  EXPECT_FALSE(tracker.initialized());
  const Vec2 out = tracker.update({3.0, 4.0}, 0.0);
  EXPECT_TRUE(tracker.initialized());
  EXPECT_EQ(out, (Vec2{3.0, 4.0}));
  EXPECT_EQ(tracker.velocity(), (Vec2{0.0, 0.0}));
}

TEST(Tracker, ConvergesToConstantVelocityTrack) {
  // Low process noise: the filter knows the target moves smoothly.
  TrackerConfig cfg;
  cfg.acceleration_sigma = 0.2;
  LocationTracker tracker(cfg);
  Rng rng(20);
  // Truth: start (0,0), velocity (1.0, 0.5) m/s; noisy fixes every 1 s.
  for (int i = 0; i <= 30; ++i) {
    const double t = static_cast<double>(i);
    const Vec2 truth{1.0 * t, 0.5 * t};
    tracker.update({truth.x + rng.normal(0.0, 0.5),
                    truth.y + rng.normal(0.0, 0.5)},
                   t);
  }
  EXPECT_NEAR(tracker.velocity().x, 1.0, 0.15);
  EXPECT_NEAR(tracker.velocity().y, 0.5, 0.15);
  EXPECT_LT(distance(tracker.position(), {30.0, 15.0}), 0.6);
}

TEST(Tracker, SmoothsNoiseBelowRawFixes) {
  // Filtered error variance must beat the raw measurement variance for a
  // static target after burn-in (low process noise: near-static model).
  TrackerConfig cfg;
  cfg.acceleration_sigma = 0.1;
  LocationTracker tracker(cfg);
  Rng rng(21);
  const Vec2 truth{5.0, 5.0};
  RunningStats raw_err, filt_err;
  for (int i = 0; i <= 60; ++i) {
    const Vec2 fix{truth.x + rng.normal(0.0, 0.8),
                   truth.y + rng.normal(0.0, 0.8)};
    const Vec2 filtered = tracker.update(fix, static_cast<double>(i));
    if (i >= 10) {
      raw_err.add(distance(fix, truth));
      filt_err.add(distance(filtered, truth));
    }
  }
  EXPECT_LT(filt_err.mean(), 0.7 * raw_err.mean());
}

TEST(Tracker, GateRejectsGrossOutlier) {
  LocationTracker tracker;
  for (int i = 0; i < 10; ++i) {
    tracker.update({1.0, 1.0}, static_cast<double>(i));
  }
  const Vec2 before = tracker.position();
  const Vec2 out = tracker.update({15.0, -12.0}, 10.0);  // absurd jump
  EXPECT_TRUE(tracker.last_fix_rejected());
  EXPECT_LT(distance(out, before), 0.5);
}

TEST(Tracker, GateCanBeDisabled) {
  TrackerConfig cfg;
  cfg.gate_nis = 0.0;
  LocationTracker tracker(cfg);
  for (int i = 0; i < 10; ++i) {
    tracker.update({1.0, 1.0}, static_cast<double>(i));
  }
  tracker.update({15.0, -12.0}, 10.0);
  EXPECT_FALSE(tracker.last_fix_rejected());
  EXPECT_GT(distance(tracker.position(), {1.0, 1.0}), 1.0);
}

TEST(Tracker, PredictExtrapolatesVelocity) {
  LocationTracker tracker;
  for (int i = 0; i <= 20; ++i) {
    const double t = static_cast<double>(i);
    tracker.update({2.0 * t, 0.0}, t);
  }
  const Vec2 ahead = tracker.predict(25.0);
  EXPECT_NEAR(ahead.x, 50.0, 2.0);
  EXPECT_NEAR(ahead.y, 0.0, 0.5);
}

TEST(Tracker, ContractViolations) {
  LocationTracker tracker;
  EXPECT_THROW(tracker.position(), ContractViolation);
  EXPECT_THROW(tracker.predict(1.0), ContractViolation);
  tracker.update({0.0, 0.0}, 5.0);
  EXPECT_THROW(tracker.update({0.0, 0.0}, 4.0), ContractViolation);
  EXPECT_THROW(tracker.predict(4.0), ContractViolation);
  TrackerConfig bad;
  bad.measurement_sigma = 0.0;
  EXPECT_THROW(LocationTracker{bad}, ContractViolation);
}

}  // namespace
}  // namespace spotfi
