// Tests for the MUSIC estimators: steering-vector algebra, subspace
// splitting, peak finding, and — the heart of the reproduction — recovery
// of known multipath parameters from synthesized CSI by SpotFi's joint
// AoA/ToF super-resolution algorithm and by the classic MUSIC-AoA
// baseline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "csi/sanitize.hpp"
#include "linalg/hermitian_eig.hpp"
#include "music/crlb.hpp"
#include "music/esprit.hpp"
#include "music/estimators.hpp"
#include "music/steering.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

CsiSynthesizer ideal_synth() {
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.noise_floor_dbm = -300.0;
  imp.rssi_shadowing_db = 0.0;
  return {kLink, imp};
}

PathComponent make_path(double aoa_deg, double tof_ns, double gain_db,
                        double phase = 0.0) {
  PathComponent p;
  p.aoa_rad = deg_to_rad(aoa_deg);
  p.tof_s = tof_ns * 1e-9;
  p.gain_db = gain_db;
  p.phase_rad = phase;
  return p;
}

// --- steering vectors ---

TEST(Steering, PhiMatchesEq1) {
  const double theta = deg_to_rad(30.0);
  const cplx phi = phi_factor(theta, kLink);
  EXPECT_NEAR(std::abs(phi), 1.0, 1e-12);
  const double expected = -2.0 * kPi * kLink.antenna_spacing_m * 0.5 *
                          kLink.carrier_hz / kSpeedOfLight;
  EXPECT_NEAR(std::arg(phi), wrap_pi(expected), 1e-9);
}

TEST(Steering, HalfWavelengthBroadsideIsUnity) {
  EXPECT_NEAR(std::abs(phi_factor(0.0, kLink) - cplx(1.0, 0.0)), 0.0, 1e-12);
}

TEST(Steering, OmegaMatchesEq6) {
  const double tof = 10e-9;
  const cplx omega = omega_factor(tof, kLink);
  EXPECT_NEAR(std::arg(omega),
              wrap_pi(-2.0 * kPi * kLink.subcarrier_spacing_hz * tof), 1e-12);
}

TEST(Steering, VectorsAreGeometricProgressions) {
  const double theta = deg_to_rad(-20.0);
  const double tof = 35e-9;
  const CVector a = aoa_steering(theta, 3, kLink);
  const CVector t = tof_steering(tof, 5, kLink);
  EXPECT_EQ(a[0], cplx(1.0, 0.0));
  EXPECT_NEAR(std::abs(a[2] - a[1] * phi_factor(theta, kLink)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(t[4] - t[3] * omega_factor(tof, kLink)), 0.0, 1e-12);
}

TEST(Steering, JointIsKroneckerProduct) {
  const double theta = deg_to_rad(40.0);
  const double tof = 60e-9;
  const CVector joint = joint_steering(theta, tof, 2, 15, kLink);
  const CVector ant = aoa_steering(theta, 2, kLink);
  const CVector sub = tof_steering(tof, 15, kLink);
  ASSERT_EQ(joint.size(), 30u);
  for (std::size_t a = 0; a < 2; ++a) {
    for (std::size_t s = 0; s < 15; ++s) {
      EXPECT_NEAR(std::abs(joint[a * 15 + s] - ant[a] * sub[s]), 0.0, 1e-12);
    }
  }
}

TEST(Steering, TofPeriodMatchesSpacing) {
  EXPECT_NEAR(tof_period(kLink), 800e-9, 1e-12);
}

// --- subspace ---

TEST(Subspace, SinglePathYieldsOneSignalDimension) {
  const auto synth = ideal_synth();
  const auto p = make_path(10.0, 40.0, 0.0);
  const CMatrix x =
      smoothed_csi(synth.ideal_csi(std::span<const PathComponent>(&p, 1)));
  const Subspaces sub = noise_subspace(x);
  EXPECT_EQ(sub.n_signal, 1u);
  EXPECT_EQ(sub.noise.cols(), x.rows() - 1);
}

TEST(Subspace, ThreePathsYieldThreeSignalDimensions) {
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{make_path(-30.0, 30.0, 0.0),
                                         make_path(10.0, 90.0, -2.0),
                                         make_path(55.0, 160.0, -4.0)};
  const CMatrix x = smoothed_csi(synth.ideal_csi(paths));
  const Subspaces sub = noise_subspace(x);
  EXPECT_EQ(sub.n_signal, 3u);
}

TEST(Subspace, NoiseVectorsOrthogonalToSteering) {
  // The MUSIC property: noise eigenvectors are orthogonal to the steering
  // vectors of the true paths.
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{make_path(-25.0, 50.0, 0.0),
                                         make_path(35.0, 120.0, -3.0)};
  const CMatrix x = smoothed_csi(synth.ideal_csi(paths));
  const Subspaces sub = noise_subspace(x);
  ASSERT_EQ(sub.n_signal, 2u);
  for (const auto& p : paths) {
    const CVector a = joint_steering(p.aoa_rad, p.tof_s, 2, 15, kLink);
    for (std::size_t e = 0; e < sub.noise.cols(); ++e) {
      const cplx proj = dot(sub.noise.col(e), a);
      EXPECT_LT(std::abs(proj), 1e-6) << "path and noise vector " << e;
    }
  }
}

TEST(Subspace, FixedSplitHonored) {
  const auto synth = ideal_synth();
  const auto p = make_path(0.0, 40.0, 0.0);
  const CMatrix x =
      smoothed_csi(synth.ideal_csi(std::span<const PathComponent>(&p, 1)));
  const Subspaces sub = noise_subspace_fixed(x, 4);
  EXPECT_EQ(sub.n_signal, 4u);
  EXPECT_EQ(sub.noise.cols(), x.rows() - 4);
}

TEST(Subspace, BadThresholdThrows) {
  SubspaceConfig cfg;
  cfg.relative_threshold = 0.0;
  EXPECT_THROW(noise_subspace(CMatrix(4, 4), cfg), ContractViolation);
}

// --- peaks ---

TEST(Peaks, FindsSingle1dPeak) {
  const std::vector<double> f{0.0, 1.0, 4.0, 1.0, 0.0};
  const auto peaks = find_peaks_1d(f, 5);
  ASSERT_EQ(peaks.size(), 1u);
  EXPECT_EQ(peaks[0].i, 2u);
}

TEST(Peaks, SortsByHeightAndRespectsFloor) {
  const std::vector<double> f{0.0, 3.0, 0.0, 10.0, 0.0, 0.05, 0.0};
  const auto peaks = find_peaks_1d(f, 5, 0.001);
  ASSERT_EQ(peaks.size(), 3u);
  EXPECT_EQ(peaks[0].i, 3u);
  EXPECT_EQ(peaks[1].i, 1u);
  // 0.05 < 0.01 * 10.0: dropped by the relative floor.
  const auto filtered = find_peaks_1d(f, 5, 0.01);
  EXPECT_EQ(filtered.size(), 2u);
}

TEST(Peaks, EdgesCanPeak) {
  const std::vector<double> f{5.0, 1.0, 0.5, 2.0};
  const auto peaks = find_peaks_1d(f, 5);
  ASSERT_EQ(peaks.size(), 2u);
  EXPECT_EQ(peaks[0].i, 0u);
  EXPECT_EQ(peaks[1].i, 3u);
}

TEST(Peaks, TwoDimensionalWithWrap) {
  RMatrix g(3, 6);
  g(1, 0) = 5.0;   // peak on the wrap column boundary
  g(2, 3) = 3.0;
  const auto wrapped = find_peaks_2d(g, /*wrap_cols=*/true, 5);
  ASSERT_EQ(wrapped.size(), 2u);
  EXPECT_EQ(wrapped[0].i, 1u);
  EXPECT_EQ(wrapped[0].j, 0u);
}

TEST(Peaks, ConstantGridHasNoPeaks) {
  RMatrix g(4, 4, 1.0);
  EXPECT_TRUE(find_peaks_2d(g, false, 5).empty());
}

TEST(Peaks, ParabolicOffsetExactForQuadratic) {
  // f(x) = -(x - 0.3)^2 sampled at -1, 0, 1.
  auto f = [](double x) { return -(x - 0.3) * (x - 0.3); };
  EXPECT_NEAR(parabolic_offset(f(-1.0), f(0.0), f(1.0)), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(parabolic_offset(1.0, 1.0, 1.0), 0.0);
}

// --- joint MUSIC recovery ---

struct RecoveryCase {
  double aoa_deg;
  double tof_ns;
};

class JointMusicSinglePath : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(JointMusicSinglePath, RecoversAoaAndTof) {
  const auto [aoa_deg, tof_ns] = GetParam();
  const auto synth = ideal_synth();
  const auto p = make_path(aoa_deg, tof_ns, 0.0, 0.3);
  const CMatrix csi = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  const JointMusicEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), aoa_deg, 0.5);
  EXPECT_NEAR(estimates[0].tof_s * 1e9, tof_ns, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, JointMusicSinglePath,
    ::testing::Values(RecoveryCase{0.0, 50.0}, RecoveryCase{-60.0, 20.0},
                      RecoveryCase{60.0, 20.0}, RecoveryCase{-30.0, 140.0},
                      RecoveryCase{30.0, 300.0}, RecoveryCase{15.0, 10.0},
                      RecoveryCase{-75.0, 80.0}, RecoveryCase{45.0, 220.0}));

TEST(JointMusic, ResolvesFivePathsBeyondAntennaLimit) {
  // The headline capability: 5 paths resolved with only 3 antennas, which
  // plain antenna-MUSIC cannot do (Sec. 3.1.2).
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{
      make_path(-55.0, 25.0, 0.0, 0.1), make_path(-20.0, 70.0, -2.0, 0.9),
      make_path(5.0, 130.0, -4.0, -0.7), make_path(35.0, 200.0, -5.0, 1.7),
      make_path(65.0, 280.0, -6.0, -2.1)};
  const CMatrix csi = synth.ideal_csi(paths);
  const JointMusicEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_GE(estimates.size(), 5u);
  for (const auto& truth : paths) {
    const double best = [&] {
      double err = 1e9;
      for (const auto& est : estimates) {
        err = std::min(err, std::abs(rad_to_deg(est.aoa_rad) -
                                     rad_to_deg(truth.aoa_rad)));
      }
      return err;
    }();
    EXPECT_LT(best, 2.0) << "missed path at "
                         << rad_to_deg(truth.aoa_rad) << " deg";
  }
}

TEST(JointMusic, TwoClosePathsResolvedJointly) {
  // Same AoA neighbourhood, different ToF — only the joint estimator can
  // split these (an antenna-only spectrum sees one blob).
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{make_path(10.0, 40.0, 0.0),
                                         make_path(18.0, 180.0, -1.0)};
  const CMatrix csi = synth.ideal_csi(paths);
  const JointMusicEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_GE(estimates.size(), 2u);
  std::vector<double> tofs;
  for (const auto& e : estimates) tofs.push_back(e.tof_s * 1e9);
  std::sort(tofs.begin(), tofs.end());
  EXPECT_NEAR(tofs[0], 40.0, 5.0);
  EXPECT_NEAR(tofs[1], 180.0, 5.0);
}

TEST(JointMusic, NoisyQuantizedCsiStillRecovers) {
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = true;
  imp.quantize_8bit = true;
  imp.max_snr_db = 30.0;
  const CsiSynthesizer synth(kLink, imp);
  const std::vector<PathComponent> paths{make_path(-20.0, 50.0, -40.0, 0.4),
                                         make_path(30.0, 120.0, -46.0, 1.2)};
  Rng rng(21);
  const auto packet = synth.synthesize(paths, 0.0, rng);
  const JointMusicEstimator estimator(kLink);
  const auto estimates = estimator.estimate(packet.csi);
  ASSERT_GE(estimates.size(), 1u);
  double best = 1e9;
  for (const auto& e : estimates) {
    best = std::min(best, std::abs(rad_to_deg(e.aoa_rad) + 20.0));
  }
  EXPECT_LT(best, 3.0);
}

TEST(JointMusic, SanitizedCsiShiftsAllTofsEqually) {
  // Sanitization subtracts a common delay: AoAs unchanged, ToF gaps kept.
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{make_path(-10.0, 60.0, 0.0),
                                         make_path(40.0, 150.0, -2.0)};
  const CMatrix csi = synth.ideal_csi(paths);
  const CMatrix clean = sanitize_tof(csi, kLink).csi;
  const JointMusicEstimator estimator(kLink);
  const auto raw = estimator.estimate(csi);
  const auto san = estimator.estimate(clean);
  ASSERT_GE(raw.size(), 2u);
  ASSERT_GE(san.size(), 2u);
  auto by_aoa = [](const PathEstimate& a, const PathEstimate& b) {
    return a.aoa_rad < b.aoa_rad;
  };
  auto r = raw;
  auto s = san;
  std::sort(r.begin(), r.end(), by_aoa);
  std::sort(s.begin(), s.end(), by_aoa);
  EXPECT_NEAR(rad_to_deg(r[0].aoa_rad), rad_to_deg(s[0].aoa_rad), 0.6);
  EXPECT_NEAR(rad_to_deg(r[1].aoa_rad), rad_to_deg(s[1].aoa_rad), 0.6);
  const double gap_raw = (r[1].tof_s - r[0].tof_s) * 1e9;
  const double gap_san = (s[1].tof_s - s[0].tof_s) * 1e9;
  EXPECT_NEAR(gap_raw, gap_san, 3.0);
}

TEST(JointMusic, SpectrumGridShapes) {
  const JointMusicEstimator estimator(kLink);
  const auto synth = ideal_synth();
  const auto p = make_path(0.0, 40.0, 0.0);
  const auto sp =
      estimator.spectrum(synth.ideal_csi(std::span<const PathComponent>(&p, 1)));
  EXPECT_EQ(sp.aoa_grid_rad.size(), 181u);
  EXPECT_EQ(sp.values.rows(), sp.aoa_grid_rad.size());
  EXPECT_EQ(sp.values.cols(), sp.tof_grid_s.size());
  EXPECT_TRUE(estimator.tof_axis_wraps());
}

TEST(JointMusic, WrongCsiShapeThrows) {
  const JointMusicEstimator estimator(kLink);
  EXPECT_THROW(estimator.estimate(CMatrix(2, 30)), ContractViolation);
}

TEST(JointMusic, DefaultGridSizesArePinned) {
  // The default AoA range is an exact multiple of the step (180 x 1 deg)
  // and the default ToF range an exact multiple of 2.5 ns — the grid
  // builder must keep the endpoint on every platform/libm, never gaining
  // or dropping a row. These sizes are part of the determinism contract
  // (steering tables are cached against them at construction).
  const JointMusicEstimator joint(kLink);
  EXPECT_EQ(joint.aoa_grid().size(), 181u);
  EXPECT_EQ(joint.tof_grid().size(), 320u);
  EXPECT_EQ(joint.aoa_grid().front(), -kPi / 2.0);
  EXPECT_EQ(joint.aoa_grid().back(),
            -kPi / 2.0 + 180.0 * (kPi / 180.0));
  const MusicAoaEstimator classic(kLink);
  EXPECT_EQ(classic.aoa_grid().size(), 181u);

  // A range deliberately short of an exact multiple must floor, not snap.
  JointMusicConfig short_cfg;
  short_cfg.aoa_min_rad = 0.0;
  short_cfg.aoa_max_rad = 10.5 * kPi / 180.0;
  short_cfg.aoa_step_rad = kPi / 180.0;
  EXPECT_EQ(JointMusicEstimator(kLink, short_cfg).aoa_grid().size(), 11u);

  // The relaxed fallback grid (2x step over the same span) is the other
  // production configuration; 90 x 2 deg is again an exact multiple.
  JointMusicConfig relaxed;
  relaxed.aoa_step_rad *= 2.0;
  relaxed.tof_step_s *= 2.0;
  const JointMusicEstimator coarse(kLink, relaxed);
  EXPECT_EQ(coarse.aoa_grid().size(), 91u);
  EXPECT_EQ(coarse.tof_grid().size(), 160u);
}

// --- model order estimation ---

TEST(ModelOrder, MdlCountsPathsOnCleanData) {
  const auto synth = ideal_synth();
  std::vector<PathComponent> paths;
  const double aoas[] = {-50.0, -10.0, 15.0, 45.0};
  const double tofs[] = {20e-9, 60e-9, 110e-9, 170e-9};
  ImpairmentConfig imp;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.max_snr_db = 35.0;
  const CsiSynthesizer noisy(kLink, imp);
  Rng rng(31);
  for (int l = 0; l < 4; ++l) {
    paths.push_back(make_path(aoas[l], tofs[l] * 1e9, -50.0 - 2.0 * l,
                              0.3 * l));
    paths.back().is_direct = (l == 0);
    const auto packet = noisy.synthesize(paths, 0.0, rng);
    const CMatrix x = smoothed_csi(packet.csi);
    const auto eig = eigh(x.gram());
    const std::size_t k =
        estimate_model_order(eig.eigenvalues, x.cols(), OrderMethod::kMdl);
    // Smoothing correlates the noise across columns, which is known to
    // make information criteria overestimate slightly; accept +1.
    EXPECT_GE(k, static_cast<std::size_t>(l + 1)) << "with " << l + 1;
    EXPECT_LE(k, static_cast<std::size_t>(l + 2)) << "with " << l + 1;
  }
}

TEST(ModelOrder, AicAtLeastMdl) {
  // AIC penalizes less, so its order estimate is >= MDL's.
  RVector eigenvalues{0.9, 1.0, 1.1, 1.0, 0.95, 40.0, 90.0, 300.0};
  const auto mdl =
      estimate_model_order(eigenvalues, 32, OrderMethod::kMdl);
  const auto aic =
      estimate_model_order(eigenvalues, 32, OrderMethod::kAic);
  EXPECT_GE(aic, mdl);
  EXPECT_GE(mdl, 2u);
}

TEST(ModelOrder, RejectsBadArguments) {
  const RVector one{1.0};
  EXPECT_THROW(estimate_model_order(one, 10, OrderMethod::kMdl),
               ContractViolation);
  const RVector ok{1.0, 2.0};
  EXPECT_THROW(estimate_model_order(ok, 0, OrderMethod::kMdl),
               ContractViolation);
  EXPECT_THROW(estimate_model_order(ok, 10, OrderMethod::kThreshold),
               ContractViolation);
}

TEST(Subspace, MdlMethodPluggedIntoNoiseSubspace) {
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{make_path(-30.0, 30.0, 0.0),
                                         make_path(10.0, 90.0, -2.0)};
  ImpairmentConfig imp;
  imp.sto_jitter_s = 0.0;
  imp.max_snr_db = 30.0;
  const CsiSynthesizer noisy(kLink, imp);
  Rng rng(33);
  const auto packet = noisy.synthesize(paths, 0.0, rng);
  SubspaceConfig cfg;
  cfg.order_method = OrderMethod::kMdl;
  const Subspaces sub = noise_subspace(smoothed_csi(packet.csi), cfg);
  EXPECT_EQ(sub.n_signal, 2u);
}

// --- ESPRIT joint estimator ---

class EspritSinglePath : public ::testing::TestWithParam<RecoveryCase> {};

TEST_P(EspritSinglePath, RecoversAoaAndTof) {
  const auto [aoa_deg, tof_ns] = GetParam();
  const auto synth = ideal_synth();
  const auto p = make_path(aoa_deg, tof_ns, 0.0, 0.3);
  const CMatrix csi = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  const JointEspritEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), aoa_deg, 0.2);
  EXPECT_NEAR(estimates[0].tof_s * 1e9, tof_ns, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EspritSinglePath,
    ::testing::Values(RecoveryCase{0.0, 50.0}, RecoveryCase{-60.0, 20.0},
                      RecoveryCase{35.0, 150.0}, RecoveryCase{70.0, 300.0},
                      RecoveryCase{-20.0, 10.0}));

TEST(Esprit, ResolvesAndPairsThreePaths) {
  // The pairing property: each (AoA, ToF) estimate must match one true
  // *pair*, not a cross-combination.
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{
      make_path(-40.0, 30.0, 0.0, 0.2), make_path(10.0, 120.0, -2.0, 1.0),
      make_path(50.0, 240.0, -4.0, -0.8)};
  const CMatrix csi = synth.ideal_csi(paths);
  const JointEspritEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_EQ(estimates.size(), 3u);
  for (const auto& truth : paths) {
    double best = 1e9;
    for (const auto& est : estimates) {
      const double aoa_err =
          std::abs(rad_to_deg(est.aoa_rad) - rad_to_deg(truth.aoa_rad));
      const double tof_err = std::abs(est.tof_s - truth.tof_s) * 1e9;
      best = std::min(best, aoa_err + tof_err);
    }
    EXPECT_LT(best, 3.0) << "path at " << rad_to_deg(truth.aoa_rad);
  }
}

TEST(Esprit, PowersRankPaths) {
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{make_path(-30.0, 40.0, 0.0),
                                         make_path(30.0, 160.0, -8.0)};
  const CMatrix csi = synth.ideal_csi(paths);
  const JointEspritEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_EQ(estimates.size(), 2u);
  // Sorted by power: the strong path (-30 deg) first.
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), -30.0, 1.0);
  EXPECT_GT(estimates[0].power, estimates[1].power);
}

TEST(Esprit, NoisyRecoveryStaysClose) {
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = true;
  imp.quantize_8bit = true;
  imp.max_snr_db = 30.0;
  const CsiSynthesizer synth(kLink, imp);
  std::vector<PathComponent> paths{make_path(-20.0, 50.0, -40.0, 0.4)};
  paths[0].is_direct = true;
  Rng rng(35);
  const auto packet = synth.synthesize(paths, 0.0, rng);
  const JointEspritEstimator estimator(kLink);
  const auto estimates = estimator.estimate(packet.csi);
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), -20.0, 2.0);
}

TEST(Esprit, InvalidConfigThrows) {
  EspritConfig cfg;
  cfg.smoothing.ant_len = 1;
  EXPECT_THROW(JointEspritEstimator(kLink, cfg), ContractViolation);
  EXPECT_THROW(JointEspritEstimator(kLink).estimate(CMatrix(2, 30)),
               ContractViolation);
}

// --- Cramér-Rao bounds ---

TEST(Crlb, ScalesInverselyWithAmplitudeSnr) {
  const auto low = single_path_crlb(deg_to_rad(20.0), 50e-9, 10.0, kLink);
  const auto high = single_path_crlb(deg_to_rad(20.0), 50e-9, 30.0, kLink);
  // +20 dB SNR -> 10x tighter standard deviation.
  EXPECT_NEAR(low.sigma_aoa_rad / high.sigma_aoa_rad, 10.0, 0.01);
  EXPECT_NEAR(low.sigma_tof_s / high.sigma_tof_s, 10.0, 0.01);
}

TEST(Crlb, AoaBoundGrowsTowardEndfire) {
  const auto broadside = single_path_crlb(0.0, 50e-9, 20.0, kLink);
  const auto oblique = single_path_crlb(deg_to_rad(60.0), 50e-9, 20.0, kLink);
  // Information scales with cos(theta): bound grows by 1/cos(60) = 2.
  EXPECT_NEAR(oblique.sigma_aoa_rad / broadside.sigma_aoa_rad, 2.0, 0.01);
  // ToF information is unaffected by the AoA.
  EXPECT_NEAR(oblique.sigma_tof_s, broadside.sigma_tof_s, 1e-15);
}

TEST(Crlb, EndfireBoundDiverges) {
  // cos(theta) -> 0 at endfire: the AoA information vanishes and the
  // bound blows up (numerically it may be astronomically large rather
  // than an exact singularity).
  const auto broadside = single_path_crlb(0.0, 50e-9, 20.0, kLink);
  try {
    const auto endfire =
        single_path_crlb(deg_to_rad(89.9), 50e-9, 20.0, kLink);
    EXPECT_GT(endfire.sigma_aoa_rad, 100.0 * broadside.sigma_aoa_rad);
  } catch (const NumericalError&) {
    SUCCEED();  // exactly singular is also acceptable
  }
}

TEST(Crlb, PlausibleMagnitudes) {
  // At 20 dB per-sensor SNR with 90 sensors, sub-degree AoA and
  // sub-nanosecond ToF precision is attainable.
  const auto bound = single_path_crlb(0.0, 50e-9, 20.0, kLink);
  EXPECT_LT(rad_to_deg(bound.sigma_aoa_rad), 1.0);
  EXPECT_GT(rad_to_deg(bound.sigma_aoa_rad), 0.01);
  EXPECT_LT(bound.sigma_tof_s, 1e-9);
  EXPECT_GT(bound.sigma_tof_s, 1e-12);
}

TEST(Crlb, EstimatorRmseInSaneEnvelopeOfBound) {
  // Monte-Carlo RMSE of the joint estimator vs the (unbiased-estimator)
  // CRLB. Note: smoothed MUSIC is slightly biased — the subarray
  // averaging acts as shrinkage — so its variance can sit *below* the
  // unbiased bound, while a brute-force ML estimator lands right on it
  // (bench/crlb_efficiency shows both). The test pins the RMSE to a sane
  // envelope around the bound.
  const double snr_db = 25.0;
  const auto bound = single_path_crlb(deg_to_rad(20.0), 60e-9, snr_db, kLink);

  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.max_snr_db = 200.0;
  imp.noise_floor_dbm = -92.0;
  PathComponent p = make_path(20.0, 60.0, 0.0);
  p.gain_db = -92.0 + snr_db - imp.tx_power_dbm;
  p.is_direct = true;
  const CsiSynthesizer synth(kLink, imp);
  const JointMusicEstimator estimator(kLink);

  Rng rng(55);
  double sq_err = 0.0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    const auto packet =
        synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
    const auto estimates = estimator.estimate(packet.csi);
    ASSERT_FALSE(estimates.empty());
    const double err = estimates[0].aoa_rad - deg_to_rad(20.0);
    sq_err += err * err;
  }
  const double rmse = std::sqrt(sq_err / trials);
  EXPECT_GE(rmse, 0.01 * bound.sigma_aoa_rad);
  EXPECT_LE(rmse, 30.0 * bound.sigma_aoa_rad);
}

// --- MUSIC-AoA baseline ---

class MusicAoaSinglePath : public ::testing::TestWithParam<double> {};

TEST_P(MusicAoaSinglePath, RecoversAoa) {
  const double aoa_deg = GetParam();
  const auto synth = ideal_synth();
  const auto p = make_path(aoa_deg, 60.0, 0.0);
  const CMatrix csi = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  const MusicAoaEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), aoa_deg, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MusicAoaSinglePath,
                         ::testing::Values(-70.0, -45.0, -15.0, 0.0, 10.0,
                                           40.0, 65.0));

TEST(MusicAoa, TwoWellSeparatedPaths) {
  const auto synth = ideal_synth();
  // Different ToFs make the two paths' gains vary across subcarrier
  // snapshots, which is what lets the 3-antenna covariance see rank 2.
  const std::vector<PathComponent> paths{make_path(-40.0, 30.0, 0.0),
                                         make_path(30.0, 150.0, -1.0)};
  const CMatrix csi = synth.ideal_csi(paths);
  const MusicAoaEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  ASSERT_GE(estimates.size(), 2u);
  std::vector<double> aoas;
  for (const auto& e : estimates) aoas.push_back(rad_to_deg(e.aoa_rad));
  std::sort(aoas.begin(), aoas.end());
  EXPECT_NEAR(aoas.front(), -40.0, 3.0);
  EXPECT_NEAR(aoas.back(), 30.0, 3.0);
}

TEST(JointMusic, WorksOn20MhzLink) {
  // Same machinery on the 20 MHz (uniform-model) configuration: the ToF
  // period doubles to 1.6 us and recovery still works.
  const LinkConfig link20 = LinkConfig::intel5300_20mhz();
  EXPECT_NEAR(tof_period(link20), 1600e-9, 1e-12);
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.noise_floor_dbm = -300.0;
  const CsiSynthesizer synth(link20, imp);
  const auto p = make_path(25.0, 120.0, 0.0);
  const CMatrix csi = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  const JointMusicEstimator estimator(link20);
  const auto estimates = estimator.estimate(csi);
  ASSERT_FALSE(estimates.empty());
  EXPECT_NEAR(rad_to_deg(estimates[0].aoa_rad), 25.0, 0.6);
  EXPECT_NEAR(estimates[0].tof_s * 1e9, 120.0, 3.0);
}

TEST(MusicAoa, BreaksDownWithManyPaths) {
  // The motivating failure: 5 paths with 3 antennas — the baseline cannot
  // recover them all (it reports at most 2 well-resolved AoAs); this is
  // exactly why SpotFi exists. We only assert it does not crash and
  // returns a small number of peaks.
  const auto synth = ideal_synth();
  const std::vector<PathComponent> paths{
      make_path(-55.0, 25.0, 0.0), make_path(-20.0, 70.0, -1.0),
      make_path(5.0, 130.0, -2.0), make_path(35.0, 200.0, -2.5),
      make_path(65.0, 280.0, -3.0)};
  const CMatrix csi = synth.ideal_csi(paths);
  const MusicAoaEstimator estimator(kLink);
  const auto estimates = estimator.estimate(csi);
  EXPECT_LE(estimates.size(), 3u);
}

}  // namespace
}  // namespace spotfi
