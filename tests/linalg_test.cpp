// Unit and property tests for the linear algebra substrate: matrix
// arithmetic, the Hermitian eigensolver behind MUSIC, direct solvers, and
// Levenberg-Marquardt.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/eig_general.hpp"
#include "linalg/hermitian_eig.hpp"
#include "linalg/levmar.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"

namespace spotfi {
namespace {

CMatrix random_complex(std::size_t rows, std::size_t cols, Rng& rng) {
  CMatrix m(rows, cols);
  for (auto& v : m.flat()) v = cplx(rng.normal(), rng.normal());
  return m;
}

CMatrix random_hermitian(std::size_t n, Rng& rng) {
  const CMatrix a = random_complex(n, n, rng);
  CMatrix h = a;
  h += a.adjoint();
  h *= cplx(0.5, 0.0);
  return h;
}

TEST(Matrix, InitializerListAndIndexing) {
  const RMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((RMatrix{{1.0, 2.0}, {3.0}}), ContractViolation);
}

TEST(Matrix, ArithmeticAndShapes) {
  const RMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const RMatrix b{{5.0, 6.0}, {7.0, 8.0}};
  const RMatrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(sum(1, 1), 12.0);
  const RMatrix diff = b - a;
  EXPECT_DOUBLE_EQ(diff(0, 0), 4.0);
  const RMatrix scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
  const RMatrix bad(3, 2);
  EXPECT_THROW(a + bad, ContractViolation);
}

TEST(Matrix, ProductMatchesHandComputation) {
  const RMatrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const RMatrix b{{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  const RMatrix c = a * b;
  ASSERT_EQ(c.rows(), 2u);
  ASSERT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 154.0);
}

TEST(Matrix, AdjointConjugates) {
  CMatrix m(1, 2);
  m(0, 0) = cplx(1.0, 2.0);
  m(0, 1) = cplx(3.0, -4.0);
  const CMatrix h = m.adjoint();
  ASSERT_EQ(h.rows(), 2u);
  EXPECT_EQ(h(0, 0), cplx(1.0, -2.0));
  EXPECT_EQ(h(1, 0), cplx(3.0, 4.0));
}

TEST(Matrix, GramIsHermitianPsd) {
  Rng rng(3);
  const CMatrix x = random_complex(4, 7, rng);
  const CMatrix g = x.gram();
  ASSERT_EQ(g.rows(), 4u);
  ASSERT_EQ(g.cols(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_GE(g(i, i).real(), 0.0);
    EXPECT_NEAR(g(i, i).imag(), 0.0, 1e-12);
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_NEAR(std::abs(g(i, j) - std::conj(g(j, i))), 0.0, 1e-12);
    }
  }
  // Explicit check against X * X^H.
  const CMatrix ref = x * x.adjoint();
  EXPECT_LT((g - ref).max_abs(), 1e-10);
}

TEST(Matrix, IdentityAndFrobenius) {
  const auto eye = RMatrix::identity(3);
  EXPECT_DOUBLE_EQ(eye.frobenius_norm(), std::sqrt(3.0));
  EXPECT_DOUBLE_EQ(eye(2, 2), 1.0);
  EXPECT_DOUBLE_EQ(eye(0, 1), 0.0);
}

TEST(MatVec, ComplexAndReal) {
  const CMatrix a{{cplx(1, 0), cplx(0, 1)}, {cplx(2, 0), cplx(0, 0)}};
  const CVector x{cplx(1, 0), cplx(1, 0)};
  const CVector y = matvec(a, x);
  EXPECT_EQ(y[0], cplx(1, 1));
  EXPECT_EQ(y[1], cplx(2, 0));

  const RMatrix b{{1.0, 2.0}, {3.0, 4.0}};
  const RVector u{1.0, -1.0};
  const RVector v = matvec(b, u);
  EXPECT_DOUBLE_EQ(v[0], -1.0);
  EXPECT_DOUBLE_EQ(v[1], -1.0);
}

TEST(Dot, HermitianConvention) {
  const CVector x{cplx(0, 1)};
  const CVector y{cplx(0, 1)};
  // <x, x> must be real positive with conjugation on the first argument.
  EXPECT_EQ(dot(x, y), cplx(1, 0));
}

TEST(Eigh, DiagonalMatrix) {
  CMatrix d(3, 3);
  d(0, 0) = cplx(3.0, 0.0);
  d(1, 1) = cplx(1.0, 0.0);
  d(2, 2) = cplx(2.0, 0.0);
  const HermitianEig eig = eigh(d);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(Eigh, KnownTwoByTwo) {
  // [[2, i], [-i, 2]] has eigenvalues 1 and 3.
  CMatrix a(2, 2);
  a(0, 0) = cplx(2.0, 0.0);
  a(0, 1) = cplx(0.0, 1.0);
  a(1, 0) = cplx(0.0, -1.0);
  a(1, 1) = cplx(2.0, 0.0);
  const HermitianEig eig = eigh(a);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-10);
}

TEST(Eigh, NonHermitianInputThrows) {
  CMatrix a(2, 2);
  a(0, 1) = cplx(1.0, 0.0);
  a(1, 0) = cplx(5.0, 0.0);
  EXPECT_THROW(eigh(a), ContractViolation);
}

TEST(Eigh, NonSquareThrows) {
  EXPECT_THROW(eigh(CMatrix(2, 3)), ContractViolation);
}

class EighProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EighProperty, ReconstructsAndIsOrthonormal) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const CMatrix a = random_hermitian(n, rng);
  const HermitianEig eig = eigh(a);
  ASSERT_EQ(eig.eigenvalues.size(), n);

  // Ascending eigenvalues.
  for (std::size_t k = 1; k < n; ++k) {
    EXPECT_LE(eig.eigenvalues[k - 1], eig.eigenvalues[k] + 1e-12);
  }
  // A v_k = lambda_k v_k.
  for (std::size_t k = 0; k < n; ++k) {
    const CVector v = eig.eigenvectors.col(k);
    const CVector av = matvec(a, v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(std::abs(av[i] - eig.eigenvalues[k] * v[i]), 0.0, 1e-9)
          << "n=" << n << " k=" << k << " i=" << i;
    }
  }
  // V^H V = I.
  const CMatrix vhv = eig.eigenvectors.adjoint() * eig.eigenvectors;
  EXPECT_LT((vhv - CMatrix::identity(n)).max_abs(), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Sizes, EighProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 30, 40));

TEST(Eigh, GramOfRankDeficientMatrixHasZeroEigenvalues) {
  Rng rng(5);
  // 6x3 of rank 3 -> gram 6x6 with exactly 3 (near) zero eigenvalues.
  const CMatrix x = random_complex(6, 3, rng);
  const HermitianEig eig = eigh(x.gram());
  for (int k = 0; k < 3; ++k) {
    EXPECT_NEAR(eig.eigenvalues[k], 0.0, 1e-9);
  }
  EXPECT_GT(eig.eigenvalues[3], 1e-6);
}

TEST(EighReal, SymmetricMatrixRealEigenvectors) {
  RMatrix a{{4.0, 1.0, 0.0}, {1.0, 3.0, 1.0}, {0.0, 1.0, 2.0}};
  const SymmetricEig eig = eigh(a);
  for (std::size_t k = 0; k < 3; ++k) {
    const RVector v = eig.eigenvectors.col(k);
    const RVector av = matvec(a, v);
    for (std::size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(av[i], eig.eigenvalues[k] * v[i], 1e-9);
    }
  }
  // Trace preserved.
  const double trace = eig.eigenvalues[0] + eig.eigenvalues[1] +
                       eig.eigenvalues[2];
  EXPECT_NEAR(trace, 9.0, 1e-9);
}

TEST(Cholesky, FactorizationRoundTrip) {
  const RMatrix a{{4.0, 2.0}, {2.0, 3.0}};
  const RMatrix l = cholesky(a);
  const RMatrix back = l * l.transpose();
  EXPECT_LT((back - a).max_abs(), 1e-12);
  EXPECT_DOUBLE_EQ(l(0, 1), 0.0);
}

TEST(Cholesky, IndefiniteThrows) {
  const RMatrix a{{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_THROW(cholesky(a), NumericalError);
}

TEST(SolveSpd, RecoversKnownSolution) {
  Rng rng(8);
  const std::size_t n = 6;
  RMatrix b(n, n);
  for (auto& v : b.flat()) v = rng.normal();
  RMatrix a = b * b.transpose();
  for (std::size_t i = 0; i < n; ++i) a(i, i) += 1.0;  // well conditioned
  RVector x_true(n);
  for (auto& v : x_true) v = rng.normal();
  const RVector rhs = matvec(a, x_true);
  const RVector x = solve_spd(a, rhs);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
}

TEST(Lstsq, ExactSystem) {
  const RMatrix a{{1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  // y = 2 + 0.5 x exactly.
  const RVector b{2.5, 3.0, 3.5};
  const RVector x = lstsq(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_NEAR(x[1], 0.5, 1e-10);
}

TEST(Lstsq, OverdeterminedMinimizesResidual) {
  // Four points not on a line; compare against the normal-equation result.
  const RMatrix a{{1.0, 0.0}, {1.0, 1.0}, {1.0, 2.0}, {1.0, 3.0}};
  const RVector b{0.0, 1.1, 1.9, 3.2};
  const RVector x = lstsq(a, b);
  const RMatrix ata = a.transpose() * a;
  const RVector atb = matvec(a.transpose(), b);
  const RVector x_ref = solve_spd(ata, atb);
  EXPECT_NEAR(x[0], x_ref[0], 1e-9);
  EXPECT_NEAR(x[1], x_ref[1], 1e-9);
}

TEST(Lstsq, RankDeficientThrows) {
  const RMatrix a{{1.0, 2.0}, {2.0, 4.0}, {3.0, 6.0}};
  const RVector b{1.0, 2.0, 3.0};
  EXPECT_THROW(lstsq(a, b), NumericalError);
}

TEST(LevMar, SolvesLinearFitExactly) {
  // Residuals r_i = (a + b*t_i) - y_i with y from a=1.5, b=-2.
  const RVector t{0.0, 1.0, 2.0, 3.0, 4.0};
  RVector y(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) y[i] = 1.5 - 2.0 * t[i];
  const ResidualFn fn = [&](std::span<const double> p) {
    RVector r(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
      r[i] = p[0] + p[1] * t[i] - y[i];
    }
    return r;
  };
  const RVector x0{0.0, 0.0};
  const LevMarResult res = levenberg_marquardt(fn, x0);
  EXPECT_TRUE(res.converged);
  EXPECT_NEAR(res.x[0], 1.5, 1e-6);
  EXPECT_NEAR(res.x[1], -2.0, 1e-6);
  EXPECT_NEAR(res.cost, 0.0, 1e-10);
}

TEST(LevMar, RosenbrockValleyConverges) {
  // Rosenbrock as least squares: r = (1-x, 10*(y-x^2)).
  const ResidualFn fn = [](std::span<const double> p) {
    return RVector{1.0 - p[0], 10.0 * (p[1] - p[0] * p[0])};
  };
  const RVector x0{-1.2, 1.0};
  LevMarOptions opts;
  opts.max_iterations = 300;
  const LevMarResult res = levenberg_marquardt(fn, x0, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-5);
  EXPECT_NEAR(res.x[1], 1.0, 1e-5);
}

TEST(LevMar, AnalyticJacobianPathAgrees) {
  const ResidualFn fn = [](std::span<const double> p) {
    return RVector{p[0] - 3.0, 2.0 * (p[1] + 1.0), p[0] * p[1]};
  };
  const JacobianFn jac = [](std::span<const double> p) {
    RMatrix j(3, 2);
    j(0, 0) = 1.0;
    j(1, 1) = 2.0;
    j(2, 0) = p[1];
    j(2, 1) = p[0];
    return j;
  };
  const RVector x0{1.0, 1.0};
  const LevMarResult a = levenberg_marquardt(fn, x0);
  const LevMarResult b = levenberg_marquardt(fn, x0, {}, jac);
  EXPECT_NEAR(a.cost, b.cost, 1e-8);
  EXPECT_NEAR(a.x[0], b.x[0], 1e-4);
  EXPECT_NEAR(a.x[1], b.x[1], 1e-4);
}

TEST(SolveComplex, RecoversKnownSolution) {
  Rng rng(31);
  const std::size_t n = 7;
  const CMatrix a = random_complex(n, n, rng);
  CVector x_true(n);
  for (auto& v : x_true) v = cplx(rng.normal(), rng.normal());
  const CVector b = matvec(a, x_true);
  const CVector x = solve_complex(a, b);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_LT(std::abs(x[i] - x_true[i]), 1e-9);
  }
}

TEST(SolveComplex, SingularThrows) {
  CMatrix a(2, 2);
  a(0, 0) = a(0, 1) = cplx(1.0, 1.0);
  a(1, 0) = a(1, 1) = cplx(2.0, 2.0);
  const CVector b{cplx(1.0, 0.0), cplx(0.0, 0.0)};
  EXPECT_THROW(solve_complex(a, b), NumericalError);
}

TEST(SolveComplex, ShapeMismatchThrows) {
  EXPECT_THROW(solve_complex(CMatrix(2, 3), CVector(2)), ContractViolation);
  EXPECT_THROW(solve_complex(CMatrix(2, 2), CVector(3)), ContractViolation);
}

TEST(EigGeneral, DiagonalMatrix) {
  CMatrix d(3, 3);
  d(0, 0) = cplx(1.0, 2.0);
  d(1, 1) = cplx(-3.0, 0.5);
  d(2, 2) = cplx(0.0, -1.0);
  const GeneralEig eig = eig_general(d);
  // Every diagonal entry must appear among the eigenvalues.
  for (const cplx expected : {d(0, 0), d(1, 1), d(2, 2)}) {
    double best = 1e9;
    for (const cplx got : eig.eigenvalues) {
      best = std::min(best, std::abs(got - expected));
    }
    EXPECT_LT(best, 1e-10);
  }
}

TEST(EigGeneral, KnownRotationMatrix) {
  // [[0, -1], [1, 0]] has eigenvalues +-i.
  CMatrix a(2, 2);
  a(0, 1) = cplx(-1.0, 0.0);
  a(1, 0) = cplx(1.0, 0.0);
  const GeneralEig eig = eig_general(a);
  std::vector<double> imags{eig.eigenvalues[0].imag(),
                            eig.eigenvalues[1].imag()};
  std::sort(imags.begin(), imags.end());
  EXPECT_NEAR(imags[0], -1.0, 1e-10);
  EXPECT_NEAR(imags[1], 1.0, 1e-10);
  EXPECT_NEAR(eig.eigenvalues[0].real(), 0.0, 1e-10);
}

class EigGeneralProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(EigGeneralProperty, EigenpairsSatisfyDefinition) {
  const std::size_t n = GetParam();
  Rng rng(4000 + n);
  const CMatrix a = random_complex(n, n, rng);
  const GeneralEig eig = eig_general(a);
  ASSERT_EQ(eig.eigenvalues.size(), n);
  for (std::size_t k = 0; k < n; ++k) {
    const CVector v = eig.eigenvectors.col(k);
    EXPECT_NEAR(norm2(std::span<const cplx>(v)), 1.0, 1e-9);
    const CVector av = matvec(a, v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_LT(std::abs(av[i] - eig.eigenvalues[k] * v[i]), 1e-6)
          << "n=" << n << " k=" << k;
    }
  }
  // Trace check: sum of eigenvalues equals trace.
  cplx trace{}, sum{};
  for (std::size_t i = 0; i < n; ++i) trace += a(i, i);
  for (const cplx ev : eig.eigenvalues) sum += ev;
  EXPECT_LT(std::abs(trace - sum), 1e-8 * (1.0 + std::abs(trace)));
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigGeneralProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12));

TEST(EigGeneral, AgreesWithHermitianSolverOnHermitianInput) {
  Rng rng(41);
  const CMatrix h = random_hermitian(6, rng);
  const GeneralEig ge = eig_general(h);
  const HermitianEig he = eigh(h);
  std::vector<double> general_real;
  for (const cplx ev : ge.eigenvalues) {
    EXPECT_NEAR(ev.imag(), 0.0, 1e-8);
    general_real.push_back(ev.real());
  }
  std::sort(general_real.begin(), general_real.end());
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_NEAR(general_real[i], he.eigenvalues[i], 1e-8);
  }
}

TEST(EigGeneral, NonSquareThrows) {
  EXPECT_THROW(eig_general(CMatrix(2, 3)), ContractViolation);
}

TEST(EigGeneral, JordanBlockEigenvaluesConverge) {
  // Defective matrix [[1, 1], [0, 1]]: both eigenvalues are 1 (the QR
  // iteration must still converge; eigenvectors are degenerate).
  CMatrix a(2, 2);
  a(0, 0) = a(0, 1) = a(1, 1) = cplx(1.0, 0.0);
  const GeneralEig eig = eig_general(a);
  for (const cplx ev : eig.eigenvalues) {
    EXPECT_LT(std::abs(ev - cplx(1.0, 0.0)), 1e-6);
  }
}

TEST(EigGeneral, UnitaryShiftMatrixEigenvaluesOnUnitCircle) {
  // Circular shift: eigenvalues are the 4th roots of unity — the exact
  // structure ESPRIT's shift operators have.
  CMatrix s(4, 4);
  s(0, 3) = s(1, 0) = s(2, 1) = s(3, 2) = cplx(1.0, 0.0);
  const GeneralEig eig = eig_general(s);
  for (const cplx ev : eig.eigenvalues) {
    EXPECT_NEAR(std::abs(ev), 1.0, 1e-10);
  }
  // All four roots present.
  for (const cplx root : {cplx(1, 0), cplx(-1, 0), cplx(0, 1), cplx(0, -1)}) {
    double best = 1e9;
    for (const cplx ev : eig.eigenvalues) {
      best = std::min(best, std::abs(ev - root));
    }
    EXPECT_LT(best, 1e-9);
  }
}

TEST(Matrix, RowSpanAndSetCol) {
  RMatrix m(2, 3);
  auto row = m.row(1);
  row[2] = 7.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 7.0);
  const std::vector<double> col{5.0, 6.0};
  m.set_col(0, col);
  EXPECT_DOUBLE_EQ(m(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 6.0);
  EXPECT_THROW(m.set_col(0, std::vector<double>{1.0}), ContractViolation);
}

TEST(Matrix, ColExtraction) {
  const RMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  const auto c = m.col(1);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 4.0);
}

TEST(Matrix, MaxAbsAndEquality) {
  CMatrix a(2, 2);
  a(0, 1) = cplx(3.0, -4.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 5.0);
  CMatrix b = a;
  EXPECT_TRUE(a == b);
  b(1, 1) = cplx(1e-30, 0.0);
  EXPECT_FALSE(a == b);
}

TEST(LevMar, UnderdeterminedThrows) {
  const ResidualFn fn = [](std::span<const double> p) {
    return RVector{p[0]};
  };
  const RVector x0{1.0, 1.0};  // 2 params, 1 residual
  EXPECT_THROW(levenberg_marquardt(fn, x0), ContractViolation);
}

}  // namespace
}  // namespace spotfi
