// Tests for 2-D geometry: vector algebra, segment intersection, mirror
// reflection, and floor-plan attenuation queries.
#include <gtest/gtest.h>

#include "common/angles.hpp"
#include "geom/floorplan.hpp"

namespace spotfi {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  EXPECT_EQ(a + b, Vec2(4.0, 1.0));
  EXPECT_EQ(a - b, Vec2(-2.0, 3.0));
  EXPECT_EQ(a * 2.0, Vec2(2.0, 4.0));
  EXPECT_DOUBLE_EQ(a.dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.cross(b), -7.0);
  EXPECT_DOUBLE_EQ(Vec2(3.0, 4.0).norm(), 5.0);
  EXPECT_EQ(Vec2(1.0, 0.0).perp(), Vec2(0.0, 1.0));
}

TEST(Vec2, NormalizedAndAngle) {
  const Vec2 v{0.0, 2.5};
  EXPECT_EQ(v.normalized(), Vec2(0.0, 1.0));
  EXPECT_NEAR(v.angle(), kPi / 2.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});
}

TEST(Segment, BasicProperties) {
  const Segment s{{0.0, 0.0}, {4.0, 0.0}};
  EXPECT_DOUBLE_EQ(s.length(), 4.0);
  EXPECT_EQ(s.midpoint(), Vec2(2.0, 0.0));
  EXPECT_EQ(s.direction(), Vec2(1.0, 0.0));
  EXPECT_EQ(s.normal(), Vec2(0.0, 1.0));
  EXPECT_EQ(s.point_at(0.25), Vec2(1.0, 0.0));
}

TEST(SegmentIntersection, CrossingSegmentsIntersect) {
  const Segment p{{0.0, -1.0}, {0.0, 1.0}};
  const Segment q{{-1.0, 0.0}, {1.0, 0.0}};
  const auto t = segment_intersection(p, q);
  ASSERT_TRUE(t.has_value());
  EXPECT_NEAR(*t, 0.5, 1e-12);
}

TEST(SegmentIntersection, DisjointSegmentsDoNot) {
  const Segment p{{0.0, 0.0}, {1.0, 0.0}};
  const Segment q{{2.0, -1.0}, {2.0, 1.0}};
  EXPECT_FALSE(segment_intersection(p, q).has_value());
}

TEST(SegmentIntersection, ParallelSegmentsDoNot) {
  const Segment p{{0.0, 0.0}, {1.0, 0.0}};
  const Segment q{{0.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(segment_intersection(p, q).has_value());
}

TEST(SegmentIntersection, EndpointGrazeIsExcluded) {
  // q touches p exactly at p's endpoint: the tolerance excludes it.
  const Segment p{{0.0, 0.0}, {1.0, 0.0}};
  const Segment q{{1.0, -1.0}, {1.0, 1.0}};
  EXPECT_FALSE(segment_intersection(p, q, 1e-6).has_value());
}

TEST(PointSegmentDistance, ProjectionAndEndpoints) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_DOUBLE_EQ(point_segment_distance({5.0, 3.0}, s), 3.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({-4.0, 3.0}, s), 5.0);
  EXPECT_DOUBLE_EQ(point_segment_distance({14.0, 3.0}, s), 5.0);
}

TEST(MirrorAcross, HorizontalAndTiltedLines) {
  const Segment horizontal{{0.0, 0.0}, {1.0, 0.0}};
  const Vec2 m = mirror_across({2.0, 3.0}, horizontal);
  EXPECT_NEAR(m.x, 2.0, 1e-12);
  EXPECT_NEAR(m.y, -3.0, 1e-12);

  const Segment diagonal{{0.0, 0.0}, {1.0, 1.0}};
  const Vec2 d = mirror_across({1.0, 0.0}, diagonal);
  EXPECT_NEAR(d.x, 0.0, 1e-12);
  EXPECT_NEAR(d.y, 1.0, 1e-12);
}

TEST(MirrorAcross, Involution) {
  const Segment s{{-2.0, 1.0}, {3.0, 4.0}};
  const Vec2 p{0.7, -1.3};
  const Vec2 twice = mirror_across(mirror_across(p, s), s);
  EXPECT_NEAR(twice.x, p.x, 1e-12);
  EXPECT_NEAR(twice.y, p.y, 1e-12);
}

TEST(ProjectsOnto, WithinAndOutside) {
  const Segment s{{0.0, 0.0}, {10.0, 0.0}};
  EXPECT_TRUE(projects_onto({5.0, 100.0}, s));
  EXPECT_FALSE(projects_onto({-1.0, 0.0}, s));
  EXPECT_TRUE(projects_onto({-1.0, 0.0}, s, 2.0));
}

TEST(FloorPlan, RectangleHasFourWalls) {
  FloorPlan plan;
  plan.add_rectangle({0.0, 0.0}, {10.0, 5.0}, WallMaterial::drywall(), "room");
  EXPECT_EQ(plan.wall_count(), 4u);
}

TEST(FloorPlan, DegenerateRectangleThrows) {
  FloorPlan plan;
  EXPECT_THROW(plan.add_rectangle({0.0, 0.0}, {0.0, 5.0},
                                  WallMaterial::drywall(), "bad"),
               ContractViolation);
}

TEST(FloorPlan, LineOfSightInsideEmptyRoom) {
  FloorPlan plan;
  plan.add_rectangle({0.0, 0.0}, {10.0, 5.0}, WallMaterial::drywall(), "room");
  EXPECT_TRUE(plan.line_of_sight({1.0, 1.0}, {9.0, 4.0}));
  EXPECT_DOUBLE_EQ(plan.transmission_loss_db({1.0, 1.0}, {9.0, 4.0}), 0.0);
}

TEST(FloorPlan, InteriorWallBlocksAndAttenuates) {
  FloorPlan plan;
  plan.add_wall({{{5.0, 0.0}, {5.0, 10.0}}, WallMaterial::concrete(), "div"});
  EXPECT_FALSE(plan.line_of_sight({1.0, 5.0}, {9.0, 5.0}));
  EXPECT_EQ(plan.walls_crossed({1.0, 5.0}, {9.0, 5.0}), 1u);
  EXPECT_DOUBLE_EQ(plan.transmission_loss_db({1.0, 5.0}, {9.0, 5.0}),
                   WallMaterial::concrete().transmission_loss_db);
}

TEST(FloorPlan, SkipWallIsIgnored) {
  FloorPlan plan;
  plan.add_wall({{{5.0, 0.0}, {5.0, 10.0}}, WallMaterial::concrete(), "div"});
  EXPECT_DOUBLE_EQ(plan.transmission_loss_db({1.0, 5.0}, {9.0, 5.0}, 0), 0.0);
}

TEST(FloorPlan, MultipleWallsAccumulate) {
  FloorPlan plan;
  plan.add_wall({{{3.0, 0.0}, {3.0, 10.0}}, WallMaterial::drywall(), "a"});
  plan.add_wall({{{6.0, 0.0}, {6.0, 10.0}}, WallMaterial::glass(), "b"});
  const double loss = plan.transmission_loss_db({1.0, 5.0}, {9.0, 5.0});
  EXPECT_DOUBLE_EQ(loss, WallMaterial::drywall().transmission_loss_db +
                             WallMaterial::glass().transmission_loss_db);
}

TEST(FloorPlan, ZeroLengthWallThrows) {
  FloorPlan plan;
  EXPECT_THROW(
      plan.add_wall({{{1.0, 1.0}, {1.0, 1.0}}, WallMaterial::drywall(), "x"}),
      ContractViolation);
}

}  // namespace
}  // namespace spotfi
