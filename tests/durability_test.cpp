// Tests for the crash-tolerant durability subsystem (DESIGN.md §14):
// bit-exact codecs, WAL framing with torn-tail truncation, atomic
// snapshot publish with corrupt-fallback, recovery replay that
// regenerates byte-identical fixes, injected ENOSPC/short writes, and
// the deterministic kill-point sweep — every CrashPoint × several
// seeds, each crash recovered into a fresh process image and driven to
// completion, with the final fix stream compared byte-for-byte against
// an uncrashed reference. The transport variant crashes the server mid
// delivery and asserts exactly-once across the crash + reconnect.
//
// Every scenario is seeded; a failure prints the (point, nth, seed)
// triple that reproduces it. CI adds a per-commit seed via
// SPOTFI_CRASH_SEED.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "channel/faults.hpp"
#include "core/session_manager.hpp"
#include "durability/durability.hpp"
#include "testbed/deployment.hpp"
#include "testbed/experiment.hpp"
#include "transport/transport.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

/// Self-deleting scratch directory for journal + snapshot files.
struct TempDir {
  std::string path;
  TempDir() {
    std::string tmpl = ::testing::TempDir() + "spotfi-dur-XXXXXX";
    std::vector<char> buf(tmpl.begin(), tmpl.end());
    buf.push_back('\0');
    const char* made = mkdtemp(buf.data());
    SPOTFI_EXPECTS(made != nullptr, "mkdtemp failed");
    path = made;
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string wal() const { return path + "/journal.wal"; }
};

/// Tiny payload whose timestamp encodes its identity (mark / 1000).
CsiPacket marked_packet(std::uint64_t mark) {
  CsiPacket p;
  p.csi = CMatrix(1, 4);
  for (std::size_t k = 0; k < 4; ++k) {
    p.csi(0, k) = cplx(static_cast<double>(mark), static_cast<double>(k));
  }
  p.rssi_dbm = -42.0;
  p.timestamp_s = 1e-3 * static_cast<double>(mark);
  return p;
}

std::uint64_t mark_of(const CsiPacket& p) {
  return static_cast<std::uint64_t>(std::llround(p.timestamp_s * 1000.0));
}

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.get(c);
  f.seekp(static_cast<std::streamoff>(offset));
  f.put(static_cast<char>(c ^ 0x5a));
}

// --- codec round trips ------------------------------------------------------

TEST(DurabilityCodec, PacketRoundTripsBitExactly) {
  const CsiPacket original = marked_packet(77);
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  write_packet(w, original);
  ByteReader r(buf);
  const CsiPacket back = read_packet(r);
  ASSERT_TRUE(r.done());
  ASSERT_EQ(back.csi.rows(), original.csi.rows());
  ASSERT_EQ(back.csi.cols(), original.csi.cols());
  for (std::size_t i = 0; i < original.csi.rows(); ++i) {
    for (std::size_t j = 0; j < original.csi.cols(); ++j) {
      EXPECT_EQ(back.csi(i, j), original.csi(i, j));
    }
  }
  EXPECT_EQ(back.rssi_dbm, original.rssi_dbm);
  EXPECT_EQ(back.timestamp_s, original.timestamp_s);
}

TEST(DurabilityCodec, SessionStatsRoundTrip) {
  SessionStats s;
  s.offered = 11;
  s.accepted = 10;
  s.degraded_admissions = 3;
  s.shed_packets = 1;
  s.queue_high_water = 7;
  s.queue_capacity = 64;
  s.rounds_full = 2;
  s.rounds_degraded = 1;
  s.rounds_shed = 4;
  s.deadline_limited_rounds = 5;
  s.deadline_misses = 6;
  s.fixes = 2;
  s.failed_rounds = 1;
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  write_session_stats(w, s);
  ByteReader r(buf);
  const SessionStats back = read_session_stats(r);
  ASSERT_TRUE(r.done());
  EXPECT_EQ(back.offered, s.offered);
  EXPECT_EQ(back.accepted, s.accepted);
  EXPECT_EQ(back.degraded_admissions, s.degraded_admissions);
  EXPECT_EQ(back.shed_packets, s.shed_packets);
  EXPECT_EQ(back.queue_high_water, s.queue_high_water);
  EXPECT_EQ(back.queue_capacity, s.queue_capacity);
  EXPECT_EQ(back.rounds_full, s.rounds_full);
  EXPECT_EQ(back.rounds_degraded, s.rounds_degraded);
  EXPECT_EQ(back.rounds_shed, s.rounds_shed);
  EXPECT_EQ(back.deadline_limited_rounds, s.deadline_limited_rounds);
  EXPECT_EQ(back.deadline_misses, s.deadline_misses);
  EXPECT_EQ(back.fixes, s.fixes);
  EXPECT_EQ(back.failed_rounds, s.failed_rounds);
}

TEST(DurabilityCodec, ReceiverStateRoundTrip) {
  ReceiverRecoveryState state;
  state.epoch = 3;
  state.next_expected = 42;
  state.stats.received = 50;
  state.stats.delivered = 41;
  state.stats.duplicates = 7;
  state.window.push_back({44, 2, marked_packet(9)});
  state.window.push_back({45, 0, marked_packet(10)});
  std::vector<std::uint8_t> buf;
  ByteWriter w(buf);
  write_receiver_state(w, state);
  ByteReader r(buf);
  const ReceiverRecoveryState back = read_receiver_state(r);
  ASSERT_TRUE(r.done());
  EXPECT_EQ(back.epoch, state.epoch);
  EXPECT_EQ(back.next_expected, state.next_expected);
  EXPECT_EQ(back.stats.received, state.stats.received);
  EXPECT_EQ(back.stats.delivered, state.stats.delivered);
  EXPECT_EQ(back.stats.duplicates, state.stats.duplicates);
  ASSERT_EQ(back.window.size(), 2u);
  EXPECT_EQ(back.window[0].seq, 44u);
  EXPECT_EQ(back.window[0].ap_id, 2u);
  EXPECT_EQ(mark_of(back.window[0].packet), 9u);
  EXPECT_EQ(back.window[1].seq, 45u);
  EXPECT_EQ(mark_of(back.window[1].packet), 10u);
}

TEST(DurabilityCodec, ReaderLatchesOverrunInsteadOfThrowing) {
  const std::vector<std::uint8_t> four(4, 0xab);
  ByteReader r(four);
  (void)r.u64();  // needs 8, has 4
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.done());
  EXPECT_EQ(r.u32(), 0u);  // stays latched
  EXPECT_FALSE(r.ok());
}

// --- WAL framing ------------------------------------------------------------

/// Appends open + n packets + fix + poll + close; returns record count.
std::size_t write_small_journal(const std::string& path, std::size_t n_packets,
                                WalIoFailurePlan io = {},
                                CrashInjector* crash = nullptr) {
  WalWriter writer(path, crash, io);
  EXPECT_TRUE(writer.ok());
  EXPECT_TRUE(writer.append_open({1}).has_value());
  for (std::size_t i = 0; i < n_packets; ++i) {
    WalPacket rec;
    rec.session = 1;
    rec.index = i + 1;
    rec.ap_id = i % 3;
    rec.receiver_id = 0;
    rec.seq = 0;
    rec.packet = marked_packet(100 + i);
    EXPECT_TRUE(writer.append_packet(rec).has_value());
  }
  EXPECT_TRUE(writer.append_fix({1, 1, 0xfeedULL, 2.5, false, {1.0, 2.0}, {3.0, 4.0}}).has_value());
  EXPECT_TRUE(writer.append_poll({1, 1, 3.5}).has_value());
  EXPECT_TRUE(writer.append_close({1}).has_value());
  return n_packets + 4;
}

TEST(Wal, AppendScanRoundTrip) {
  TempDir dir;
  const std::size_t n = write_small_journal(dir.wal(), 3);
  const WalScan scan = scan_wal(dir.wal());
  EXPECT_FALSE(scan.tail_error.has_value());
  EXPECT_EQ(scan.valid_bytes, scan.file_bytes);
  ASSERT_EQ(scan.records.size(), n);
  EXPECT_EQ(scan.records.front().type, WalRecordType::kSessionOpen);
  EXPECT_EQ(scan.records.back().type, WalRecordType::kSessionClose);
  const auto pkt = decode_wal_packet(scan.records[2].payload);
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->session, 1u);
  EXPECT_EQ(pkt->index, 2u);
  EXPECT_EQ(mark_of(pkt->packet), 101u);
  const auto fix = decode_wal_fix(scan.records[n - 3].payload);
  ASSERT_TRUE(fix.has_value());
  EXPECT_EQ(fix->digest, 0xfeedULL);
  EXPECT_EQ(fix->time_s, 2.5);
  EXPECT_EQ(fix->raw.x, 1.0);
  EXPECT_EQ(fix->raw.y, 2.0);
  EXPECT_EQ(fix->tracked.x, 3.0);
  EXPECT_EQ(fix->tracked.y, 4.0);
  const auto poll = decode_wal_poll(scan.records[n - 2].payload);
  ASSERT_TRUE(poll.has_value());
  EXPECT_EQ(poll->now_s, 3.5);
}

TEST(Wal, MissingFileScansAsValidEmptyJournal) {
  TempDir dir;
  const WalScan scan = scan_wal(dir.wal());
  EXPECT_FALSE(scan.tail_error.has_value());
  EXPECT_EQ(scan.records.size(), 0u);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.file_bytes, 0u);
}

TEST(Wal, TornTailIsDetectedTruncatedAndAppendableAgain) {
  TempDir dir;
  const std::size_t n = write_small_journal(dir.wal(), 3);
  const WalScan whole = scan_wal(dir.wal());
  ASSERT_EQ(whole.records.size(), n);
  // Cut the final record off mid-frame: a crash between write() and
  // completion.
  std::filesystem::resize_file(dir.wal(), whole.file_bytes - 5);
  const WalScan torn = scan_wal(dir.wal());
  ASSERT_TRUE(torn.tail_error.has_value());
  EXPECT_EQ(torn.tail_error->kind, DurabilityErrorKind::kTornRecord);
  EXPECT_EQ(torn.records.size(), n - 1);
  EXPECT_LT(torn.valid_bytes, torn.file_bytes);
  // Recovery truncates the tail; the journal is whole-records again and
  // a fresh writer resumes behind the valid prefix.
  const auto cut = truncate_wal(dir.wal(), torn.valid_bytes);
  ASSERT_TRUE(cut.has_value());
  {
    WalWriter writer(dir.wal());
    ASSERT_TRUE(writer.ok());
    EXPECT_EQ(writer.committed_bytes(), torn.valid_bytes);
    EXPECT_TRUE(writer.append_close({1}).has_value());
  }
  const WalScan again = scan_wal(dir.wal());
  EXPECT_FALSE(again.tail_error.has_value());
  EXPECT_EQ(again.records.size(), n);
  EXPECT_EQ(again.records.back().type, WalRecordType::kSessionClose);
}

TEST(Wal, BitFlipStopsScanAtFirstCorruptRecord) {
  TempDir dir;
  write_small_journal(dir.wal(), 4);
  const std::vector<std::uint8_t> pristine = read_file(dir.wal());
  ByteFaultPlan plan;
  plan.bit_flip_prob = 0.5;
  Rng rng(5);
  ByteFaultStats stats;
  const auto damaged = corrupt_wal_log(pristine, plan, rng, &stats);
  ASSERT_GE(stats.frames_corrupted(), 1u);
  write_file(dir.wal(), damaged);
  const WalScan scan = scan_wal(dir.wal());
  // Depending on where the bit landed (payload vs the length field) the
  // scan reports a checksum, length, or torn failure — but it always
  // stops exactly at the first damaged frame: corruption never replays,
  // and never hides the intact frames ahead of it.
  ASSERT_TRUE(scan.tail_error.has_value());
  EXPECT_EQ(scan.records.size(), stats.corrupted_frames.front());
}

TEST(Wal, LengthTamperRefusesWithoutGiantAllocation) {
  TempDir dir;
  write_small_journal(dir.wal(), 2);
  const std::vector<std::uint8_t> pristine = read_file(dir.wal());
  ByteFaultPlan plan;
  plan.length_tamper_prob = 1.0;
  Rng rng(9);
  ByteFaultStats stats;
  const auto damaged = corrupt_wal_log(pristine, plan, rng, &stats);
  ASSERT_GE(stats.frames_length_tampered, 1u);
  write_file(dir.wal(), damaged);
  const WalScan scan = scan_wal(dir.wal());
  ASSERT_TRUE(scan.tail_error.has_value());
  EXPECT_EQ(scan.records.size(), 0u);
  EXPECT_EQ(scan.valid_bytes, kWalHeaderBytes);
}

TEST(Wal, BadHeaderDiscardsWholeFileAndRecoversByRewrite) {
  TempDir dir;
  write_small_journal(dir.wal(), 1);
  flip_byte(dir.wal(), 0);  // clobber the magic
  const WalScan scan = scan_wal(dir.wal());
  ASSERT_TRUE(scan.tail_error.has_value());
  EXPECT_EQ(scan.tail_error->kind, DurabilityErrorKind::kBadFileHeader);
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.records.size(), 0u);
  // The recovery flow: truncate to the (empty) valid prefix, reopen —
  // the writer lays down a fresh header and the journal is usable again.
  ASSERT_TRUE(truncate_wal(dir.wal(), 0).has_value());
  {
    WalWriter writer(dir.wal());
    ASSERT_TRUE(writer.ok());
    EXPECT_TRUE(writer.append_open({7}).has_value());
  }
  const WalScan again = scan_wal(dir.wal());
  EXPECT_FALSE(again.tail_error.has_value());
  ASSERT_EQ(again.records.size(), 1u);
}

TEST(Wal, ScanFromOffsetReadsOnlyTheSuffix) {
  TempDir dir;
  const std::size_t n = write_small_journal(dir.wal(), 3);
  const WalScan full = scan_wal(dir.wal());
  ASSERT_EQ(full.records.size(), n);
  EXPECT_EQ(full.skipped_bytes, 0u);
  // Resume at the third record's frame, as recovery does from a
  // snapshot's scan mark: records below it are counted valid unread.
  const std::uint64_t mark = full.records[2].offset;
  const WalScan suffix = scan_wal(dir.wal(), mark);
  EXPECT_FALSE(suffix.tail_error.has_value());
  ASSERT_EQ(suffix.records.size(), n - 2);
  EXPECT_EQ(suffix.skipped_bytes, mark - kWalHeaderBytes);
  EXPECT_EQ(suffix.records.front().offset, mark);
  EXPECT_EQ(suffix.valid_bytes, full.valid_bytes);
  EXPECT_EQ(suffix.records.back().type, WalRecordType::kSessionClose);
  // A mark at the exact tail scans an empty suffix, not an error.
  const WalScan at_tip = scan_wal(dir.wal(), full.file_bytes);
  EXPECT_FALSE(at_tip.tail_error.has_value());
  EXPECT_EQ(at_tip.records.size(), 0u);
  EXPECT_EQ(at_tip.valid_bytes, full.file_bytes);
  // A mark past the end (journal wiped/recreated underneath an old
  // snapshot) degrades to a full scan rather than trusting it.
  const WalScan fallback = scan_wal(dir.wal(), full.file_bytes + 1000);
  EXPECT_EQ(fallback.records.size(), n);
  EXPECT_EQ(fallback.skipped_bytes, 0u);
}

TEST(Wal, EnospcAppendFailsCleanAndLeavesWholeRecords) {
  TempDir dir;
  WalIoFailurePlan io;
  io.fail_after_bytes = 200;  // header + the open + one small packet
  WalWriter writer(dir.wal(), nullptr, io);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE(writer.append_open({1}).has_value());
  std::size_t committed = 1;
  std::size_t failures = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    WalPacket rec;
    rec.session = 1;
    rec.index = i + 1;
    rec.packet = marked_packet(10 + i);
    const auto result = writer.append_packet(rec);
    if (result.has_value()) {
      ++committed;
    } else {
      ++failures;
      EXPECT_EQ(result.error().kind, DurabilityErrorKind::kIoError);
    }
  }
  ASSERT_GE(failures, 1u);
  // The file holds exactly the committed records — a failed append left
  // no trace (ftruncate back to the last commit).
  const WalScan scan = scan_wal(dir.wal());
  EXPECT_FALSE(scan.tail_error.has_value());
  EXPECT_EQ(scan.records.size(), committed);
  EXPECT_EQ(scan.valid_bytes, scan.file_bytes);
  EXPECT_EQ(scan.valid_bytes, writer.committed_bytes());
}

TEST(Wal, ShortWritesResumeUntilTheRecordCommits) {
  TempDir dir;
  WalIoFailurePlan io;
  io.short_write_bytes = 7;  // every write() transfers at most 7 bytes
  const std::size_t n = write_small_journal(dir.wal(), 3, io);
  const WalScan scan = scan_wal(dir.wal());
  EXPECT_FALSE(scan.tail_error.has_value());
  EXPECT_EQ(scan.records.size(), n);
}

// --- snapshots --------------------------------------------------------------

SnapshotData small_snapshot(std::uint64_t seq) {
  SnapshotData data;
  data.seq = seq;
  data.next_session_id = 5;
  data.retired.offered = 12;
  data.retired.accepted = 11;
  SessionDurableState session;
  session.id = 3;
  session.stats.accepted = 4;
  session.applied_packets = 4;
  session.emitted_fixes = 1;
  data.sessions.push_back(std::move(session));
  SnapshotData::ReceiverEntry entry;
  entry.receiver_id = 1;
  entry.state.epoch = 2;
  entry.state.next_expected = 9;
  data.receivers.push_back(std::move(entry));
  return data;
}

TEST(Snapshot, WriteLoadRoundTripAndPrune) {
  TempDir dir;
  for (std::uint64_t seq = 1; seq <= 3; ++seq) {
    const auto path = write_snapshot(dir.path, small_snapshot(seq), 2);
    ASSERT_TRUE(path.has_value()) << "seq " << seq;
  }
  // Prune kept only the newest two.
  std::size_t snaps = 0;
  for (const auto& e : std::filesystem::directory_iterator(dir.path)) {
    if (e.path().extension() == ".snap") ++snaps;
  }
  EXPECT_EQ(snaps, 2u);
  const SnapshotLoadResult loaded = load_latest_snapshot(dir.path);
  ASSERT_TRUE(loaded.data.has_value());
  EXPECT_EQ(loaded.discarded, 0u);
  EXPECT_EQ(loaded.max_seq_seen, 3u);
  EXPECT_EQ(loaded.data->seq, 3u);
  EXPECT_EQ(loaded.data->next_session_id, 5u);
  EXPECT_EQ(loaded.data->retired.offered, 12u);
  ASSERT_EQ(loaded.data->sessions.size(), 1u);
  EXPECT_EQ(loaded.data->sessions[0].id, 3u);
  EXPECT_EQ(loaded.data->sessions[0].applied_packets, 4u);
  ASSERT_EQ(loaded.data->receivers.size(), 1u);
  EXPECT_EQ(loaded.data->receivers[0].receiver_id, 1u);
  EXPECT_EQ(loaded.data->receivers[0].state.next_expected, 9u);
}

TEST(Snapshot, CorruptNewestFallsBackThenToFullReplay) {
  TempDir dir;
  const auto p1 = write_snapshot(dir.path, small_snapshot(1), 4);
  const auto p2 = write_snapshot(dir.path, small_snapshot(2), 4);
  ASSERT_TRUE(p1.has_value());
  ASSERT_TRUE(p2.has_value());
  flip_byte(*p2, 24);  // inside the checksum/payload
  const SnapshotLoadResult fell_back = load_latest_snapshot(dir.path);
  ASSERT_TRUE(fell_back.data.has_value());
  EXPECT_EQ(fell_back.data->seq, 1u);
  EXPECT_EQ(fell_back.discarded, 1u);
  EXPECT_EQ(fell_back.max_seq_seen, 2u);  // the burned ordinal stays burned
  flip_byte(*p1, 24);
  const SnapshotLoadResult none = load_latest_snapshot(dir.path);
  EXPECT_FALSE(none.data.has_value());
  EXPECT_EQ(none.discarded, 2u);
  EXPECT_EQ(none.max_seq_seen, 2u);
}

TEST(Snapshot, StrayTmpIsIgnoredOnLoadAndSweptOnPublish) {
  TempDir dir;
  const std::string stray = dir.path + "/snapshot-00000000000000000009.snap.tmp";
  write_file(stray, {1, 2, 3});
  const SnapshotLoadResult loaded = load_latest_snapshot(dir.path);
  EXPECT_FALSE(loaded.data.has_value());
  EXPECT_EQ(loaded.discarded, 0u);
  ASSERT_TRUE(write_snapshot(dir.path, small_snapshot(1), 2).has_value());
  EXPECT_FALSE(std::filesystem::exists(stray));
}

// --- durable session workload ----------------------------------------------

/// Simulated feed: one office target, packets interleaved across APs.
struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;

  explicit Feed(std::size_t packets, Vec2 target = {6.0, 3.5})
      : runner(kLink, office_deployment(), make_config(packets)) {
    Rng rng(11);
    captures = runner.simulate_captures(target, rng);
  }
  static ExperimentConfig make_config(std::size_t packets) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    return config;
  }
  [[nodiscard]] std::vector<ArrayPose> poses() const {
    std::vector<ArrayPose> out;
    for (const auto& capture : captures) out.push_back(capture.pose);
    return out;
  }
};

SessionConfig base_session(const Feed& feed, std::size_t group_size) {
  SessionConfig cfg;
  cfg.streaming.group_size = group_size;
  cfg.streaming.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.streaming.server.localizer.area_max = feed.runner.deployment().area_max;
  cfg.aps = feed.poses();
  cfg.seed = 77;
  // Deep queue + pump-per-offer keeps occupancy below every degrade
  // rung, so every run plans all rounds at full fidelity.
  cfg.overload.queue_capacity = 512;
  return cfg;
}

constexpr std::size_t kPacketsPerAp = 6;
constexpr std::size_t kGroup = 3;  // 6 packets / group 3 -> 2 fixes
constexpr double kPollTime = 1.0e3;

const Feed& shared_feed() {
  static const Feed feed(kPacketsPerAp);
  return feed;
}

using FixesByRound = std::map<std::uint64_t, LocationFix>;

/// Records one emitted fix; a fix re-emitted under the same durable
/// round ordinal (recovery replay overlapping the pre-crash stream)
/// must be byte-identical to the first sighting.
void note_fix(FixesByRound& by_round, const LocationFix& fix) {
  ASSERT_GT(fix.durable_round_index, 0u);
  const auto [it, inserted] = by_round.emplace(fix.durable_round_index, fix);
  if (!inserted) {
    EXPECT_EQ(it->second.raw.x, fix.raw.x);
    EXPECT_EQ(it->second.raw.y, fix.raw.y);
    EXPECT_EQ(it->second.tracked.x, fix.tracked.x);
    EXPECT_EQ(it->second.tracked.y, fix.tracked.y);
    EXPECT_EQ(it->second.time_s, fix.time_s);
  }
}

void expect_same_fixes(const FixesByRound& got, const FixesByRound& want) {
  ASSERT_EQ(got.size(), want.size());
  for (const auto& [round, fix] : want) {
    const auto it = got.find(round);
    ASSERT_NE(it, got.end()) << "round " << round << " missing";
    EXPECT_EQ(it->second.raw.x, fix.raw.x) << "round " << round;
    EXPECT_EQ(it->second.raw.y, fix.raw.y) << "round " << round;
    EXPECT_EQ(it->second.tracked.x, fix.tracked.x) << "round " << round;
    EXPECT_EQ(it->second.tracked.y, fix.tracked.y) << "round " << round;
    EXPECT_EQ(it->second.time_s, fix.time_s) << "round " << round;
    EXPECT_EQ(it->second.degraded, fix.degraded) << "round " << round;
  }
}

/// The session, recovered or fresh.
SessionId ensure_session(DurableSessionManager& dm) {
  const auto ids = dm.manager().session_ids();
  if (!ids.empty()) return ids.front();
  return dm.open_session(base_session(shared_feed(), kGroup));
}

/// Drives the scripted direct-feed workload to completion from wherever
/// `dm` currently is: every accepted packet at or below applied_packets
/// is already inside the recovered state, so the resume point *is* the
/// durable replay mark. Throws CrashInjected when a crash is armed.
void drive_direct(DurableSessionManager& dm, FixesByRound& by_round) {
  const Feed& feed = shared_feed();
  const SessionId id = ensure_session(dm);
  const std::size_t naps = feed.captures.size();
  const std::size_t total = kPacketsPerAp * naps;
  for (std::uint64_t i = dm.manager().applied_packets(id); i < total; ++i) {
    const std::size_t p = i / naps;
    const std::size_t a = i % naps;
    ASSERT_TRUE(dm.offer(id, a, feed.captures[a].packets[p]).admitted());
    for (const LocationFix& fix : dm.pump(id)) note_fix(by_round, fix);
  }
  if (dm.manager().applied_polls(id) == 0) {
    if (const auto fix = dm.poll(id, kPollTime)) note_fix(by_round, *fix);
  }
}

DurabilityConfig durable_config(const std::string& dir, CrashInjector* crash) {
  DurabilityConfig cfg;
  cfg.enabled = true;
  cfg.dir = dir;
  cfg.snapshot_every_fixes = 1;
  cfg.snapshots_to_keep = 2;
  cfg.crash = crash;
  return cfg;
}

SessionManagerConfig serial_manager() {
  SessionManagerConfig cfg;
  cfg.num_threads = 1;
  return cfg;
}

DurableSessionManager::SessionConfigFn shared_config_of() {
  return [](SessionId) { return base_session(shared_feed(), kGroup); };
}

struct GoldenRun {
  FixesByRound fixes;
  SessionStats stats;
  std::array<std::uint64_t, kCrashPointCount> visits{};
};

/// The uncrashed reference: the same workload, durable, never killed.
/// Its fixes are the byte-identical target and its per-point visit
/// counts parameterize the sweep.
const GoldenRun& golden_run() {
  static const GoldenRun golden = [] {
    GoldenRun out;
    TempDir dir;
    CrashInjector inj;  // unarmed: counts visits only
    DurableSessionManager dm(kLink, serial_manager(),
                             durable_config(dir.path, &inj));
    (void)dm.recover(shared_config_of());
    drive_direct(dm, out.fixes);
    out.stats = dm.manager().session_stats(ensure_session(dm));
    for (std::size_t p = 0; p < kCrashPointCount; ++p) {
      out.visits[p] = inj.visits(static_cast<CrashPoint>(p));
    }
    EXPECT_EQ(out.fixes.size(), kPacketsPerAp / kGroup);
    EXPECT_EQ(dm.journal_failures(), 0u);
    EXPECT_GE(dm.snapshots_written(), out.fixes.size());
    return out;
  }();
  return golden;
}

TEST(DurableSession, DisabledIsPassThroughWithByteIdenticalFixes) {
  const Feed& feed = shared_feed();
  const SessionConfig scfg = base_session(feed, kGroup);
  std::vector<LocationFix> plain_fixes;
  {
    SessionManager plain(kLink, serial_manager());
    const SessionId id = plain.open_session(scfg);
    for (std::size_t p = 0; p < kPacketsPerAp; ++p) {
      for (std::size_t a = 0; a < feed.captures.size(); ++a) {
        ASSERT_TRUE(plain.offer(id, a, feed.captures[a].packets[p]).admitted());
        for (auto& fix : plain.pump(id)) plain_fixes.push_back(std::move(fix));
      }
    }
  }
  DurableSessionManager dm(kLink, serial_manager(), DurabilityConfig{});
  FixesByRound durable_fixes;
  drive_direct(dm, durable_fixes);  // no recover() needed when disabled
  ASSERT_EQ(durable_fixes.size(), plain_fixes.size());
  for (const auto& fix : plain_fixes) {
    const auto it = durable_fixes.find(fix.durable_round_index);
    ASSERT_NE(it, durable_fixes.end());
    EXPECT_EQ(it->second.raw.x, fix.raw.x);
    EXPECT_EQ(it->second.raw.y, fix.raw.y);
    EXPECT_EQ(it->second.tracked.x, fix.tracked.x);
    EXPECT_EQ(it->second.tracked.y, fix.tracked.y);
  }
  EXPECT_EQ(dm.journal_failures(), 0u);
  EXPECT_EQ(dm.snapshots_written(), 0u);
}

TEST(DurableSession, FullJournalReplayRegeneratesEveryFixByteIdentically) {
  const GoldenRun& golden = golden_run();
  TempDir dir;
  DurabilityConfig cfg = durable_config(dir.path, nullptr);
  cfg.snapshot_every_fixes = 0;  // journal-only: replay from the start
  {
    DurableSessionManager dm(kLink, serial_manager(), cfg);
    (void)dm.recover(shared_config_of());
    FixesByRound fixes;
    drive_direct(dm, fixes);
    expect_same_fixes(fixes, golden.fixes);
  }
  DurableSessionManager dm2(kLink, serial_manager(), cfg);
  const RecoveryReport report = dm2.recover(shared_config_of());
  EXPECT_FALSE(report.snapshot_loaded);
  EXPECT_EQ(report.fix_mismatches, 0u);
  EXPECT_EQ(report.sessions_recovered, 1u);
  EXPECT_EQ(report.journal_bytes_truncated, 0u);
  FixesByRound regenerated;
  for (const auto& [sid, fix] : report.recovered_fixes) {
    note_fix(regenerated, fix);
  }
  expect_same_fixes(regenerated, golden.fixes);
  const SessionStats st = dm2.manager().session_stats(ensure_session(dm2));
  EXPECT_EQ(st.accepted, golden.stats.accepted);
  EXPECT_EQ(st.offered, golden.stats.offered);
  EXPECT_EQ(st.fixes, golden.stats.fixes);
}

TEST(DurableSession, SnapshotBoundsReplayAndResumesMidStream) {
  const GoldenRun& golden = golden_run();
  const Feed& feed = shared_feed();
  const std::size_t naps = feed.captures.size();
  const std::size_t half = (kPacketsPerAp * naps) / 2;
  TempDir dir;
  FixesByRound fixes;
  {
    DurableSessionManager dm(kLink, serial_manager(),
                             durable_config(dir.path, nullptr));
    (void)dm.recover(shared_config_of());
    const SessionId id = ensure_session(dm);
    for (std::size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(
          dm.offer(id, i % naps, feed.captures[i % naps].packets[i / naps])
              .admitted());
      for (const LocationFix& fix : dm.pump(id)) note_fix(fixes, fix);
    }
    ASSERT_GE(fixes.size(), 1u);  // a snapshot exists mid-stream
  }
  DurableSessionManager dm2(kLink, serial_manager(),
                            durable_config(dir.path, nullptr));
  const RecoveryReport report = dm2.recover(shared_config_of());
  EXPECT_TRUE(report.snapshot_loaded);
  EXPECT_EQ(report.fix_mismatches, 0u);
  // The snapshot bounded the replay: strictly fewer packets replayed
  // than were accepted in total — and the scan itself, which started at
  // the snapshot's journal mark instead of re-reading the whole file.
  EXPECT_LT(report.packets_replayed, half);
  EXPECT_GT(report.journal_bytes_skipped, 0u);
  for (const auto& [sid, fix] : report.recovered_fixes) note_fix(fixes, fix);
  drive_direct(dm2, fixes);
  expect_same_fixes(fixes, golden.fixes);
  const SessionStats st = dm2.manager().session_stats(ensure_session(dm2));
  EXPECT_EQ(st.accepted, golden.stats.accepted);
  EXPECT_EQ(st.fixes, golden.stats.fixes);
}

TEST(DurableSession, EnospcKeepsServingFixesAndCountsEveryFailure) {
  const GoldenRun& golden = golden_run();
  TempDir dir;
  DurabilityConfig cfg = durable_config(dir.path, nullptr);
  cfg.snapshot_every_fixes = 0;
  cfg.io.fail_after_bytes = 4096;  // the "disk" fills after a few records
  DurableSessionManager dm(kLink, serial_manager(), cfg);
  (void)dm.recover(shared_config_of());
  FixesByRound fixes;
  drive_direct(dm, fixes);
  // Availability over durability: every fix still emitted, every failed
  // append counted, and the journal on disk is still whole records.
  expect_same_fixes(fixes, golden.fixes);
  EXPECT_GE(dm.journal_failures(), 1u);
  const WalScan scan = scan_wal(dir.path + "/journal.wal");
  EXPECT_FALSE(scan.tail_error.has_value());
  EXPECT_EQ(scan.valid_bytes, scan.file_bytes);
  EXPECT_LE(scan.file_bytes, cfg.io.fail_after_bytes);
}

TEST(DurableSession, ShortWritesAreInvisibleToRecovery) {
  const GoldenRun& golden = golden_run();
  TempDir dir;
  DurabilityConfig cfg = durable_config(dir.path, nullptr);
  cfg.snapshot_every_fixes = 0;
  cfg.io.short_write_bytes = 11;
  {
    DurableSessionManager dm(kLink, serial_manager(), cfg);
    (void)dm.recover(shared_config_of());
    FixesByRound fixes;
    drive_direct(dm, fixes);
    EXPECT_EQ(dm.journal_failures(), 0u);
  }
  DurableSessionManager dm2(kLink, serial_manager(), cfg);
  const RecoveryReport report = dm2.recover(shared_config_of());
  EXPECT_EQ(report.fix_mismatches, 0u);
  FixesByRound regenerated;
  for (const auto& [sid, fix] : report.recovered_fixes) {
    note_fix(regenerated, fix);
  }
  expect_same_fixes(regenerated, golden.fixes);
}

// --- close / reopen across recovery ----------------------------------------

TEST(DurableSession, SessionIdsNeverReusedAndRetirementExactlyOnceAcrossRecovery) {
  const Feed& feed = shared_feed();
  TempDir dir;
  SessionId first = 0;
  SessionId second = 0;
  std::uint64_t accepted_first = 0;
  {
    DurabilityConfig cfg = durable_config(dir.path, nullptr);
    cfg.snapshot_every_fixes = 0;
    DurableSessionManager dm(kLink, serial_manager(), cfg);
    (void)dm.recover(shared_config_of());
    first = dm.open_session(base_session(feed, kGroup));
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      ASSERT_TRUE(dm.offer(first, a, feed.captures[a].packets[0]).admitted());
      (void)dm.pump(first);
    }
    accepted_first = dm.manager().session_stats(first).accepted;
    dm.close_session(first);
    second = dm.open_session(base_session(feed, kGroup));
    ASSERT_TRUE(dm.offer(second, 0, feed.captures[0].packets[0]).admitted());
    (void)dm.pump(second);
  }
  DurabilityConfig cfg = durable_config(dir.path, nullptr);
  cfg.snapshot_every_fixes = 0;
  DurableSessionManager dm2(kLink, serial_manager(), cfg);
  const RecoveryReport report = dm2.recover(shared_config_of());
  // Both opens replayed; the journaled close retired the first session
  // again — exactly once, through the idempotent close path.
  EXPECT_EQ(report.sessions_recovered, 2u);
  const auto ids = dm2.manager().session_ids();
  ASSERT_EQ(ids.size(), 1u);
  EXPECT_EQ(ids.front(), second);
  // The id horizon survived: a fresh session never reuses a dead id,
  // even though the dead id only ever existed in the journal.
  const SessionId third = dm2.open_session(base_session(feed, kGroup));
  EXPECT_GT(third, second);
  EXPECT_NE(third, first);
  // The retired aggregate holds the first session's packets exactly once.
  const SessionStats global = dm2.manager().global_stats();
  EXPECT_EQ(global.accepted,
            accepted_first + dm2.manager().session_stats(second).accepted);
  // Re-closing a journal-closed id is a no-op, not a double retirement.
  dm2.close_session(second);
  dm2.close_session(second);
  EXPECT_EQ(dm2.manager().global_stats().accepted, global.accepted);
}

TEST(DurableSession, FsyncOptInPreservesTheRecoveryContract) {
  const GoldenRun& golden = golden_run();
  const Feed& feed = shared_feed();
  const std::size_t naps = feed.captures.size();
  const std::size_t half = (kPacketsPerAp * naps) / 2;
  TempDir dir;
  DurabilityConfig cfg = durable_config(dir.path, nullptr);
  cfg.fsync = true;
  FixesByRound fixes;
  {
    DurableSessionManager dm(kLink, serial_manager(), cfg);
    (void)dm.recover(shared_config_of());
    const SessionId id = ensure_session(dm);
    for (std::size_t i = 0; i < half; ++i) {
      ASSERT_TRUE(
          dm.offer(id, i % naps, feed.captures[i % naps].packets[i / naps])
              .admitted());
      for (const LocationFix& fix : dm.pump(id)) note_fix(fixes, fix);
    }
    EXPECT_EQ(dm.journal_failures(), 0u);
    EXPECT_GE(dm.snapshots_written(), 1u);
  }
  DurableSessionManager dm2(kLink, serial_manager(), cfg);
  const RecoveryReport report = dm2.recover(shared_config_of());
  EXPECT_EQ(report.fix_mismatches, 0u);
  for (const auto& [sid, fix] : report.recovered_fixes) note_fix(fixes, fix);
  drive_direct(dm2, fixes);
  expect_same_fixes(fixes, golden.fixes);
}

/// Two sessions pumped from two threads while every fix trips a cadence
/// snapshot (which reads *both* sessions' state): the journal mutex
/// must serialize the snapshot against the other thread's in-flight
/// pump. TSan in the CI crash-recovery job is the real assertion here.
TEST(DurableSession, CrossThreadPumpsSerializeAgainstCadenceSnapshots) {
  const GoldenRun& golden = golden_run();
  const Feed& feed = shared_feed();
  TempDir dir;
  DurableSessionManager dm(kLink, serial_manager(),
                           durable_config(dir.path, nullptr));
  (void)dm.recover(shared_config_of());
  const SessionId a = dm.open_session(base_session(feed, kGroup));
  const SessionId b = dm.open_session(base_session(feed, kGroup));
  const std::size_t naps = feed.captures.size();
  auto drive = [&](SessionId id, std::vector<LocationFix>& out, bool& ok) {
    ok = true;
    for (std::uint64_t i = 0; i < kPacketsPerAp * naps; ++i) {
      const std::size_t p = static_cast<std::size_t>(i) / naps;
      const std::size_t ap = static_cast<std::size_t>(i) % naps;
      if (!dm.offer(id, ap, feed.captures[ap].packets[p]).admitted()) {
        ok = false;  // gtest assertions are not thread-safe; flag instead
        return;
      }
      for (LocationFix& fix : dm.pump(id)) out.push_back(std::move(fix));
    }
  };
  std::vector<LocationFix> fixes_a;
  std::vector<LocationFix> fixes_b;
  bool ok_a = false;
  bool ok_b = false;
  std::thread ta([&] { drive(a, fixes_a, ok_a); });
  std::thread tb([&] { drive(b, fixes_b, ok_b); });
  ta.join();
  tb.join();
  ASSERT_TRUE(ok_a);
  ASSERT_TRUE(ok_b);
  EXPECT_EQ(dm.journal_failures(), 0u);
  // Each session ran the golden workload independently; interleaved
  // journaling and snapshots must not perturb either fix stream.
  FixesByRound by_round_a;
  FixesByRound by_round_b;
  for (const LocationFix& fix : fixes_a) note_fix(by_round_a, fix);
  for (const LocationFix& fix : fixes_b) note_fix(by_round_b, fix);
  expect_same_fixes(by_round_a, golden.fixes);
  expect_same_fixes(by_round_b, golden.fixes);
}

// --- the kill-point sweep ---------------------------------------------------

std::vector<std::uint64_t> sweep_seeds() {
  std::vector<std::uint64_t> seeds = {1, 2, 3};
  if (const char* env = std::getenv("SPOTFI_CRASH_SEED")) {
    seeds.push_back(std::strtoull(env, nullptr, 10));
    std::cout << "[crash] SPOTFI_CRASH_SEED=" << seeds.back() << std::endl;
  }
  return seeds;
}

/// One armed crash run: drive until the process "dies", recover into a
/// fresh image, finish the workload, and hand back everything observed.
struct CrashRunResult {
  bool crashed = false;
  FixesByRound fixes;
  RecoveryReport report;
  SessionStats stats;
  std::uint64_t journal_failures = 0;
};

CrashRunResult run_crashed_direct(CrashPoint point, std::uint64_t nth,
                                  std::uint64_t seed) {
  CrashRunResult out;
  TempDir dir;
  CrashInjector inj;
  inj.arm(point, nth, seed);
  {
    DurableSessionManager dm(kLink, serial_manager(),
                             durable_config(dir.path, &inj));
    (void)dm.recover(shared_config_of());
    try {
      drive_direct(dm, out.fixes);
    } catch (const CrashInjected&) {
      out.crashed = true;
    }
  }  // the dying process's memory is gone; only the files remain
  inj.disarm();
  DurableSessionManager dm(kLink, serial_manager(),
                           durable_config(dir.path, &inj));
  out.report = dm.recover(shared_config_of());
  for (const auto& [sid, fix] : out.report.recovered_fixes) {
    note_fix(out.fixes, fix);
  }
  drive_direct(dm, out.fixes);
  out.stats = dm.manager().session_stats(ensure_session(dm));
  out.journal_failures = dm.journal_failures();
  return out;
}

TEST(DurableCrash, EveryKillPointRecoversToByteIdenticalFixes) {
  const GoldenRun& golden = golden_run();
  for (std::size_t p = 0; p < kCrashPointCount; ++p) {
    const auto point = static_cast<CrashPoint>(p);
    if (point == CrashPoint::kRecoveryTruncate) continue;  // needs a torn
    // tail first — the dedicated double-crash test below covers it.
    ASSERT_GT(golden.visits[p], 0u)
        << to_string(point) << " never visited by the reference run";
    for (const std::uint64_t seed : sweep_seeds()) {
      // A seeded visit ordinal: every seed kills a different occurrence
      // of the same I/O boundary.
      const std::uint64_t nth =
          1 + (seed * 0x9e3779b97f4a7c15ULL) % golden.visits[p];
      SCOPED_TRACE(std::string("point=") + to_string(point) +
                   " nth=" + std::to_string(nth) +
                   " seed=" + std::to_string(seed));
      const CrashRunResult run = run_crashed_direct(point, nth, seed);
      // The workload is deterministic, so the armed visit must occur.
      ASSERT_TRUE(run.crashed);
      EXPECT_EQ(run.report.fix_mismatches, 0u);
      expect_same_fixes(run.fixes, golden.fixes);
      // Exactly-once accounting across the crash: nothing lost, nothing
      // applied twice, partitions exact.
      EXPECT_EQ(run.stats.accepted, golden.stats.accepted);
      EXPECT_EQ(run.stats.offered,
                run.stats.accepted + run.stats.shed_packets);
      EXPECT_EQ(run.stats.shed_packets, 0u);
      EXPECT_EQ(run.stats.fixes, golden.stats.fixes);
    }
  }
}

TEST(DurableCrash, CrashDuringRecoveryTruncateIsItselfRecoverable) {
  const GoldenRun& golden = golden_run();
  const std::uint64_t torn_visits =
      golden.visits[static_cast<std::size_t>(CrashPoint::kJournalAppendTorn)];
  ASSERT_GT(torn_visits, 0u);
  // First crash: a torn append leaves a partial record at the tail. The
  // seeded prefix can be empty, so hunt for a seed that really tears.
  std::optional<TempDir> dir;
  FixesByRound fixes;
  bool torn = false;
  for (std::uint64_t seed = 1; seed <= 8 && !torn; ++seed) {
    dir.emplace();
    fixes.clear();
    CrashInjector inj;
    inj.arm(CrashPoint::kJournalAppendTorn, 1 + torn_visits / 2, seed);
    DurableSessionManager dm(kLink, serial_manager(),
                             durable_config(dir->path, &inj));
    (void)dm.recover(shared_config_of());
    bool crashed = false;
    try {
      drive_direct(dm, fixes);
    } catch (const CrashInjected&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
    const WalScan scan = scan_wal(dir->wal());
    torn = scan.file_bytes > scan.valid_bytes;
  }
  ASSERT_TRUE(torn) << "no seed produced a non-empty torn prefix";
  // Second crash: recovery dies at the truncate itself. The torn tail
  // must still be on disk for the next attempt.
  CrashInjector inj;
  inj.arm(CrashPoint::kRecoveryTruncate, 1, 7);
  {
    DurableSessionManager dm(kLink, serial_manager(),
                             durable_config(dir->path, &inj));
    bool crashed = false;
    try {
      (void)dm.recover(shared_config_of());
    } catch (const CrashInjected&) {
      crashed = true;
    }
    ASSERT_TRUE(crashed);
  }
  ASSERT_TRUE(scan_wal(dir->wal()).tail_error.has_value());
  // Third attempt recovers clean and the workload completes to the same
  // byte-identical fix stream.
  inj.disarm();
  DurableSessionManager dm(kLink, serial_manager(),
                           durable_config(dir->path, &inj));
  const RecoveryReport report = dm.recover(shared_config_of());
  EXPECT_GT(report.journal_bytes_truncated, 0u);
  EXPECT_EQ(report.fix_mismatches, 0u);
  for (const auto& [sid, fix] : report.recovered_fixes) note_fix(fixes, fix);
  drive_direct(dm, fixes);
  expect_same_fixes(fixes, golden.fixes);
}

/// Regression for a lost-fix window: a pump() batch with more than one
/// fix used to trip the cadence snapshot on the *first* fix — after the
/// manager had already advanced emitted_fixes for the whole batch but
/// before the later fixes' records were appended. A crash right after
/// kSnapshotPublished then lost those fixes for good: replay skipped
/// their generating packets (inside the snapshot) and no journaled
/// values existed to re-emit. The cadence now fires once per batch,
/// after every fix of the batch is in the journal.
TEST(DurableCrash, MultiFixPumpBatchSurvivesSnapshotPublishCrash) {
  const Feed& feed = shared_feed();
  const std::size_t naps = feed.captures.size();
  const std::size_t total = kPacketsPerAp * naps;
  // Reference: offer everything, then a single pump that emits the
  // whole multi-fix batch, then the timer poll.
  FixesByRound want;
  {
    TempDir dir;
    DurableSessionManager dm(kLink, serial_manager(),
                             durable_config(dir.path, nullptr));
    (void)dm.recover(shared_config_of());
    const SessionId id = dm.open_session(base_session(feed, kGroup));
    for (std::size_t i = 0; i < total; ++i) {
      ASSERT_TRUE(
          dm.offer(id, i % naps, feed.captures[i % naps].packets[i / naps])
              .admitted());
    }
    const std::vector<LocationFix> batch = dm.pump(id);
    ASSERT_GE(batch.size(), 2u) << "workload must emit a multi-fix batch";
    for (const LocationFix& fix : batch) note_fix(want, fix);
    if (const auto fix = dm.poll(id, kPollTime)) note_fix(want, *fix);
  }
  for (const std::uint64_t seed : sweep_seeds()) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TempDir dir;
    CrashInjector inj;
    inj.arm(CrashPoint::kSnapshotPublished, 1, seed);
    FixesByRound fixes;
    {
      DurableSessionManager dm(kLink, serial_manager(),
                               durable_config(dir.path, &inj));
      (void)dm.recover(shared_config_of());
      const SessionId id = dm.open_session(base_session(feed, kGroup));
      for (std::size_t i = 0; i < total; ++i) {
        ASSERT_TRUE(
            dm.offer(id, i % naps, feed.captures[i % naps].packets[i / naps])
                .admitted());
      }
      // The batch's cadence snapshot publishes, then the "process" dies
      // before pump() returns — the caller never sees a single fix.
      EXPECT_THROW((void)dm.pump(id), CrashInjected);
    }
    inj.disarm();
    DurableSessionManager dm(kLink, serial_manager(),
                             durable_config(dir.path, &inj));
    const RecoveryReport report = dm.recover(shared_config_of());
    EXPECT_EQ(report.fix_mismatches, 0u);
    // Every fix of the batch must come back from the journal: the
    // snapshot covered them all, so recovery re-emits all of them.
    for (const auto& [sid, fix] : report.recovered_fixes) {
      note_fix(fixes, fix);
    }
    const SessionId id = ensure_session(dm);
    if (dm.manager().applied_polls(id) == 0) {
      if (const auto fix = dm.poll(id, kPollTime)) note_fix(fixes, *fix);
    }
    expect_same_fixes(fixes, want);
  }
}

/// The close record hits the journal before the in-memory close, same
/// journal-before-effect ordering as packets: whichever side of the
/// append the crash lands on, recovery and the caller agree.
TEST(DurableCrash, CloseJournalsBeforeTheInMemoryEffect) {
  const Feed& feed = shared_feed();
  // (a) Crash before any close byte reaches the journal: the caller
  // never observed the close complete, so the session survives
  // recovery and a retried close works.
  {
    TempDir dir;
    CrashInjector inj;
    DurabilityConfig cfg = durable_config(dir.path, &inj);
    cfg.snapshot_every_fixes = 0;
    SessionId id = 0;
    {
      DurableSessionManager dm(kLink, serial_manager(), cfg);
      (void)dm.recover(shared_config_of());
      id = dm.open_session(base_session(feed, kGroup));
      ASSERT_TRUE(dm.offer(id, 0, feed.captures[0].packets[0]).admitted());
      inj.arm(CrashPoint::kJournalAppendStart,
              inj.visits(CrashPoint::kJournalAppendStart) + 1, 3);
      EXPECT_THROW(dm.close_session(id), CrashInjected);
    }
    inj.disarm();
    DurabilityConfig cfg2 = durable_config(dir.path, nullptr);
    cfg2.snapshot_every_fixes = 0;
    DurableSessionManager dm2(kLink, serial_manager(), cfg2);
    (void)dm2.recover(shared_config_of());
    const auto ids = dm2.manager().session_ids();
    ASSERT_EQ(ids.size(), 1u);
    EXPECT_EQ(ids.front(), id);
    dm2.close_session(id);
    EXPECT_TRUE(dm2.manager().session_ids().empty());
  }
  // (b) Crash after the close record is durable but before the
  // in-memory close applied: recovery replays the close — a session
  // whose close the journal recorded is never resurrected — and the
  // stats retire exactly once.
  {
    TempDir dir;
    CrashInjector inj;
    DurabilityConfig cfg = durable_config(dir.path, &inj);
    cfg.snapshot_every_fixes = 0;
    {
      DurableSessionManager dm(kLink, serial_manager(), cfg);
      (void)dm.recover(shared_config_of());
      const SessionId id = dm.open_session(base_session(feed, kGroup));
      ASSERT_TRUE(dm.offer(id, 0, feed.captures[0].packets[0]).admitted());
      inj.arm(CrashPoint::kJournalAppendDone,
              inj.visits(CrashPoint::kJournalAppendDone) + 1, 3);
      EXPECT_THROW(dm.close_session(id), CrashInjected);
    }
    inj.disarm();
    DurabilityConfig cfg2 = durable_config(dir.path, nullptr);
    cfg2.snapshot_every_fixes = 0;
    DurableSessionManager dm2(kLink, serial_manager(), cfg2);
    (void)dm2.recover(shared_config_of());
    EXPECT_TRUE(dm2.manager().session_ids().empty());
    EXPECT_EQ(dm2.manager().global_stats().accepted, 1u);
  }
}

// --- crash + transport reconnect -------------------------------------------

TEST(DurableCrash, ServerCrashAndReconnectDeliverExactlyOnce) {
  constexpr std::size_t kTPackets = 4;
  constexpr std::size_t kTGroup = 2;  // -> 2 fixes
  const Feed feed(kTPackets);
  SessionConfig scfg = base_session(feed, kTGroup);
  const std::size_t naps = feed.captures.size();
  const std::size_t total = kTPackets * naps;
  const auto config_of = [&scfg](SessionId) { return scfg; };

  // Reference: the direct offer() path, no transport, no durability.
  FixesByRound golden;
  {
    SessionManager plain(kLink, serial_manager());
    const SessionId id = plain.open_session(scfg);
    for (std::size_t p = 0; p < kTPackets; ++p) {
      for (std::size_t a = 0; a < naps; ++a) {
        ASSERT_TRUE(plain.offer(id, a, feed.captures[a].packets[p]).admitted());
        for (const LocationFix& fix : plain.pump(id)) note_fix(golden, fix);
      }
    }
    ASSERT_EQ(golden.size(), kTPackets / kTGroup);
  }

  struct Scenario {
    CrashPoint point;
    std::uint64_t nth;
  };
  // Kill the server mid-delivery at each append boundary: before any
  // byte (unacked -> retransmitted), mid-record (torn tail), and after
  // the record is durable but before the sink returned (replayed from
  // the journal AND retransmitted — the dedup-or-double-apply case).
  const Scenario scenarios[] = {
      {CrashPoint::kJournalAppendStart, 6},
      {CrashPoint::kJournalAppendTorn, 9},
      {CrashPoint::kJournalAppendDone, 12},
  };

  LinkFaultModel model;
  model.delay_s = 0.01;
  model.jitter_s = 0.02;
  model.drop_prob = 0.05;
  model.duplicate_prob = 0.05;

  for (const std::uint64_t seed : sweep_seeds()) {
    for (const Scenario& s : scenarios) {
      SCOPED_TRACE(std::string("point=") + to_string(s.point) +
                   " nth=" + std::to_string(s.nth) +
                   " seed=" + std::to_string(seed));
      TempDir dir;
      CrashInjector inj;
      inj.arm(s.point, s.nth, seed);
      LinkSimulator link(model, seed);
      TransportConfig tcfg;
      tcfg.seed = seed ^ 0x9e3779b97f4a7c15ULL;
      tcfg.rto_initial_s = 0.1;
      tcfg.heartbeat_interval_s = 0.25;
      tcfg.liveness_timeout_s = 1.0;

      // Server incarnation 1. The sender (the capture client) and the
      // link live *outside* the crash scope — only the server dies.
      auto dm = std::make_unique<DurableSessionManager>(
          kLink, serial_manager(), durable_config(dir.path, &inj));
      (void)dm->recover(config_of);
      SessionId id = dm->open_session(scfg);
      TransportSender sender(link, tcfg);
      auto receiver = std::make_unique<TransportReceiver>(
          link, dm->make_sink(id, 1), tcfg);
      dm->bind_receiver(1, receiver.get());

      FixesByRound fixes;
      std::size_t next = 0;  // flat capture index, client-side state
      bool crashed = false;
      bool completed = false;
      const double dt = 0.005;
      for (double t = 0.0; t < 240.0; t += dt) {
        try {
          if (next < total) {
            CsiPacket packet =
                feed.captures[next % naps].packets[next / naps];
            if (sender.send(next % naps, packet, t).has_value()) ++next;
          }
          sender.tick(t);
          receiver->tick(t);
          for (const LocationFix& fix : dm->pump(id)) note_fix(fixes, fix);
          if (next >= total && sender.quiescent() && receiver->quiescent()) {
            completed = true;
            break;
          }
        } catch (const CrashInjected&) {
          crashed = true;
          // Server death: every in-memory object goes; the sender keeps
          // retransmitting into the void until the restart answers.
          receiver.reset();
          dm.reset();
          inj.disarm();
          dm = std::make_unique<DurableSessionManager>(
              kLink, serial_manager(), durable_config(dir.path, &inj));
          const RecoveryReport report = dm->recover(config_of);
          EXPECT_EQ(report.fix_mismatches, 0u);
          const auto ids = dm->manager().session_ids();
          id = ids.empty() ? dm->open_session(scfg) : ids.front();
          for (const auto& [sid, fix] : report.recovered_fixes) {
            note_fix(fixes, fix);
          }
          receiver = std::make_unique<TransportReceiver>(
              link, dm->make_sink(id, 1), tcfg);
          if (!dm->restore_receiver(1, *receiver)) {
            dm->bind_receiver(1, receiver.get());
          }
        }
      }
      ASSERT_TRUE(crashed) << "armed crash never fired";
      ASSERT_TRUE(completed) << "transport failed to quiesce after restart";

      // Byte-identical fixes: the crash changed *when* packets arrived,
      // never *what* the estimator computed — and exactly once: the
      // session accepted each frame a single time across crash +
      // reconnect, with both stats partitions exact.
      expect_same_fixes(fixes, golden);
      const SessionStats st = dm->manager().session_stats(id);
      EXPECT_EQ(st.accepted, total);
      EXPECT_EQ(st.offered, st.accepted + st.shed_packets);
      const TransportStats tx = sender.stats();
      EXPECT_EQ(tx.sent, total);
      EXPECT_EQ(tx.acked, total);
      EXPECT_EQ(tx.pending, 0u);
      EXPECT_EQ(tx.failed, 0u);
      const TransportStats rx = receiver->stats();
      EXPECT_EQ(rx.received, rx.delivered + rx.duplicates +
                                 rx.out_of_window + rx.corrupt + rx.buffered);
    }
  }
}

}  // namespace
}  // namespace spotfi
