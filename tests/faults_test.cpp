// Tests for the fault-injection harness (channel/faults) and the
// graceful-degradation machinery it exercises: AP health states, quorum
// deadline rounds, the estimator fallback chain, and leave-one-out
// outlier-AP rejection. The acceptance scenario of the robustness issue —
// 6 APs, one killed mid-stream, pipeline keeps emitting fixes and the
// dead AP recovers — lives here as FaultMatrix.SurvivesApOutage.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "channel/faults.hpp"
#include "common/stats.hpp"
#include "core/streaming.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

CsiPacket good_packet(Rng& rng, double timestamp = 0.0) {
  ImpairmentConfig imp;
  const CsiSynthesizer synth(kLink, imp);
  PathComponent p;
  p.aoa_rad = 0.3;
  p.tof_s = 40e-9;
  p.gain_db = -55.0;
  p.is_direct = true;
  return synth.synthesize(std::span<const PathComponent>(&p, 1), timestamp,
                          rng);
}

CsiPacket nan_packet(Rng& rng, double timestamp, bool nan_rssi = false) {
  CsiPacket packet = good_packet(rng, timestamp);
  for (auto& v : packet.csi.flat()) v = cplx(kNan, kNan);
  if (nan_rssi) packet.rssi_dbm = kNan;
  return packet;
}

// --- FaultInjector ---

TEST(FaultInjector, OutageSwallowsAndRecovers) {
  FaultPlan plan;
  plan.aps.resize(1);
  plan.aps[0].outages = {{1.0, 2.0}};
  FaultInjector injector(plan, 2);
  Rng rng(1), rng_pkt(2);

  std::size_t delivered = 0;
  for (int i = 0; i < 12; ++i) {
    const double t = 0.25 * i;
    const auto out = injector.inject(0, good_packet(rng_pkt, t), rng);
    if (t >= 1.0 && t < 2.0) {
      EXPECT_TRUE(out.empty()) << "t=" << t;
      EXPECT_TRUE(injector.in_outage(0, t));
    } else {
      EXPECT_EQ(out.size(), 1u) << "t=" << t;
      EXPECT_FALSE(injector.in_outage(0, t));
    }
    delivered += out.size();
  }
  EXPECT_EQ(injector.stats().outage_swallowed, 4u);  // t = 1.0 .. 1.75
  EXPECT_EQ(injector.stats().delivered, delivered);
  // AP 1 has no profile: clean passthrough.
  EXPECT_EQ(injector.inject(1, good_packet(rng_pkt, 0.0), rng).size(), 1u);
}

TEST(FaultInjector, DeterministicUnderSeed) {
  FaultPlan plan;
  plan.aps.resize(1);
  plan.aps[0].loss_prob = 0.3;
  plan.aps[0].nan_burst_prob = 0.3;
  plan.aps[0].clip_prob = 0.2;

  std::vector<double> reference;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(plan, 1);
    Rng rng(77), rng_pkt(78);
    std::vector<double> signature;
    for (int i = 0; i < 50; ++i) {
      for (const auto& p : injector.inject(0, good_packet(rng_pkt, 0.1 * i),
                                           rng)) {
        signature.push_back(p.timestamp_s);
        signature.push_back(std::norm(p.csi(0, 0)));
      }
    }
    if (run == 0) {
      reference = signature;
    } else {
      EXPECT_EQ(signature, reference);
    }
  }
}

TEST(FaultInjector, ReorderingDeliversOutOfOrder) {
  FaultPlan plan;
  plan.aps.resize(1);
  plan.aps[0].reorder_prob = 0.5;
  plan.aps[0].reorder_delay = 2;
  FaultInjector injector(plan, 1);
  Rng rng(5), rng_pkt(6);

  std::vector<double> delivered;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    for (const auto& p : injector.inject(0, good_packet(rng_pkt, 0.1 * i),
                                         rng)) {
      delivered.push_back(p.timestamp_s);
    }
  }
  EXPECT_GT(injector.stats().reordered, 0u);
  // Nothing lost: delivered + still-held == fed.
  EXPECT_LE(delivered.size(), static_cast<std::size_t>(n));
  EXPECT_GE(delivered.size(),
            static_cast<std::size_t>(n) - plan.aps[0].reorder_delay - 1);
  // And the order is genuinely scrambled somewhere.
  bool out_of_order = false;
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    if (delivered[i] < delivered[i - 1]) out_of_order = true;
  }
  EXPECT_TRUE(out_of_order);
}

TEST(FaultInjector, CorruptionFaults) {
  FaultPlan plan;
  plan.aps.resize(1);
  plan.aps[0].nan_burst_prob = 1.0;
  FaultInjector injector(plan, 1);
  Rng rng(7), rng_pkt(8);

  const auto out = injector.inject(0, good_packet(rng_pkt, 0.0), rng);
  ASSERT_EQ(out.size(), 1u);
  bool any_nan = false;
  for (const auto& v : out[0].csi.flat()) {
    if (!std::isfinite(v.real())) any_nan = true;
  }
  EXPECT_TRUE(any_nan);

  FaultPlan chain_plan;
  chain_plan.aps.resize(1);
  chain_plan.aps[0].dead_chain = 1;
  FaultInjector chain_killer(chain_plan, 1);
  Rng rng_c(7), rng_pkt_c(8);
  const auto dead = chain_killer.inject(0, good_packet(rng_pkt_c, 0.0), rng_c);
  ASSERT_EQ(dead.size(), 1u);
  for (std::size_t s = 0; s < dead[0].csi.cols(); ++s) {
    EXPECT_EQ(dead[0].csi(1, s), cplx{});
  }

  FaultPlan clip_plan;
  clip_plan.aps.resize(1);
  clip_plan.aps[0].clip_prob = 1.0;
  clip_plan.aps[0].clip_gain_db = 20.0;
  FaultInjector clipper(clip_plan, 1);
  Rng rng2(9), rng_pkt2(10);
  const auto reference = good_packet(rng_pkt2, 0.0);
  Rng rng_pkt3(10);  // same seed: identical packet
  const auto clipped = clipper.inject(0, good_packet(rng_pkt3, 0.0), rng2);
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_NEAR(std::abs(clipped[0].csi(0, 0)) / std::abs(reference.csi(0, 0)),
              10.0, 1e-6);  // +20 dB amplitude
}

TEST(FaultInjector, StaleTimestamps) {
  FaultPlan plan;
  plan.aps.resize(1);
  plan.aps[0].stale_prob = 1.0;
  FaultInjector injector(plan, 1);
  Rng rng(11), rng_pkt(12);
  const auto first = injector.inject(0, good_packet(rng_pkt, 1.0), rng);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].timestamp_s, 1.0);  // nothing delivered before it
  const auto second = injector.inject(0, good_packet(rng_pkt, 2.0), rng);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].timestamp_s, 1.0);  // frozen clock
  EXPECT_GE(injector.stats().stale_stamped, 1u);
}

TEST(FaultInjector, ContractChecks) {
  FaultPlan plan;
  plan.aps.resize(3);
  EXPECT_THROW(FaultInjector(plan, 2), ContractViolation);
  plan.aps.resize(1);
  plan.aps[0].outages = {{2.0, 1.0}};
  EXPECT_THROW(FaultInjector(plan, 1), ContractViolation);
}

// --- estimator fallback chain ---

TEST(FallbackChain, PrimaryOnCleanGroup) {
  Rng rng(20);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 6; ++i) group.push_back(good_packet(rng, 0.1 * i));
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.3});
  const ApOutcome outcome = processor.process_robust(group, rng);
  EXPECT_TRUE(outcome.usable);
  EXPECT_EQ(outcome.stage, ApStage::kPrimary);
  EXPECT_TRUE(outcome.result.observation.has_aoa);
  EXPECT_EQ(outcome.note, "");  // a clean group must not report numerics
}

TEST(FallbackChain, RssiOnlyWhenCsiCorrupt) {
  Rng rng(21);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 5; ++i) group.push_back(nan_packet(rng, 0.1 * i));
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0});
  const ApOutcome outcome = processor.process_robust(group, rng);
  EXPECT_TRUE(outcome.usable);
  EXPECT_EQ(outcome.stage, ApStage::kRssiOnly);
  EXPECT_FALSE(outcome.result.observation.has_aoa);
  EXPECT_TRUE(std::isfinite(outcome.result.observation.rssi_dbm));
  EXPECT_GT(outcome.result.observation.likelihood, 0.0);
  EXPECT_FALSE(outcome.note.empty());
}

TEST(FallbackChain, EstimatorFailureIsCaughtNotThrown) {
  // Disable every quality check so NaN CSI reaches MUSIC/ESPRIT and they
  // break internally; the chain must swallow that and degrade to
  // RSSI-only instead of throwing.
  Rng rng(22);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 4; ++i) group.push_back(nan_packet(rng, 0.1 * i));
  ApProcessorConfig cfg;
  QualityConfig lax;
  lax.check_finite = false;
  lax.check_dead_antenna = false;
  lax.max_antenna_imbalance_db = 1e12;
  lax.max_power_jump_db = 1e12;
  cfg.quality = lax;
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0}, cfg);
  ApOutcome outcome;
  EXPECT_NO_THROW(outcome = processor.process_robust(group, rng));
  EXPECT_EQ(outcome.stage, ApStage::kRssiOnly);
  EXPECT_TRUE(outcome.usable);
}

TEST(FallbackChain, FailsOnlyWhenNothingUsable) {
  Rng rng(23);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 4; ++i) {
    group.push_back(nan_packet(rng, 0.1 * i, /*nan_rssi=*/true));
  }
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0});
  const ApOutcome outcome = processor.process_robust(group, rng);
  EXPECT_FALSE(outcome.usable);
  EXPECT_EQ(outcome.stage, ApStage::kFailed);
  EXPECT_EQ(outcome.result.observation.likelihood, 0.0);
}

TEST(FallbackChain, DisabledFallbackStillDoesNotThrow) {
  Rng rng(24);
  std::vector<CsiPacket> group;
  for (int i = 0; i < 4; ++i) group.push_back(nan_packet(rng, 0.1 * i));
  ApProcessorConfig cfg;
  cfg.fallback.enabled = false;
  const ApProcessor processor(kLink, ArrayPose{{0.0, 0.0}, 0.0}, cfg);
  const ApOutcome outcome = processor.process_robust(group, rng);
  EXPECT_FALSE(outcome.usable);
  EXPECT_EQ(outcome.stage, ApStage::kFailed);
}

// --- streaming feed through the injector ---

/// Office-deployment packet streams, one burst per AP, shared timestamps.
struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;

  explicit Feed(std::size_t packets, Vec2 target = {6.0, 3.5})
      : runner(kLink, office_deployment(), make_config(packets)) {
    Rng rng(31);
    captures = runner.simulate_captures(target, rng);
  }
  static ExperimentConfig make_config(std::size_t packets) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    return config;
  }
};

StreamingConfig degradation_config(const Feed& feed, std::size_t group_size) {
  StreamingConfig cfg;
  cfg.group_size = group_size;
  cfg.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.server.localizer.area_max = feed.runner.deployment().area_max;
  cfg.degradation.round_deadline_s = 0.5;
  cfg.degradation.degraded_after_s = 0.5;
  cfg.degradation.dead_after_s = 1.0;
  return cfg;
}

TEST(FaultMatrix, SurvivesApOutage) {
  const Vec2 target{6.0, 3.5};
  const std::size_t n_packets = 60;  // 6 s of stream at 0.1 s spacing
  Feed feed(n_packets, target);
  const std::size_t n_aps = feed.captures.size();
  ASSERT_EQ(n_aps, 6u);

  StreamingLocalizer server(kLink, degradation_config(feed, 5));
  for (const auto& c : feed.captures) server.add_ap(c.pose);

  constexpr std::size_t kVictim = 2;
  constexpr double kKill = 1.5, kRecover = 4.0;
  FaultPlan plan;
  plan.aps.resize(n_aps);
  plan.aps[kVictim].outages = {{kKill, kRecover}};
  FaultInjector injector(plan, n_aps);

  Rng rng(32);
  std::vector<double> errors;
  std::vector<double> fix_times;
  bool victim_died = false, victim_recovered = false;
  std::size_t degraded_fixes = 0;

  for (std::size_t p = 0; p < n_packets; ++p) {
    for (std::size_t a = 0; a < n_aps; ++a) {
      for (const auto& packet :
           injector.inject(a, feed.captures[a].packets[p], rng)) {
        std::optional<LocationFix> fix;
        EXPECT_NO_THROW(fix = server.push(a, packet, rng));
        if (fix) {
          errors.push_back(distance(fix->raw, target));
          fix_times.push_back(fix->time_s);
          if (fix->degraded) ++degraded_fixes;
        }
      }
    }
    // Health bookkeeping: the victim must be declared dead during the
    // outage and healthy again after recovery.
    if (server.ap_health(kVictim) == ApHealth::kDead) victim_died = true;
    if (victim_died && server.ap_health(kVictim) == ApHealth::kHealthy) {
      victim_recovered = true;
    }
  }

  ASSERT_FALSE(errors.empty());
  // No permanent stall: fixes keep coming while the victim is down (after
  // the deadline) and after it recovers.
  bool fix_during_outage = false, fix_after_recovery = false;
  for (const double t : fix_times) {
    if (t > kKill + 1.0 && t <= kRecover) fix_during_outage = true;
    if (t > kRecover) fix_after_recovery = true;
  }
  EXPECT_TRUE(fix_during_outage);
  EXPECT_TRUE(fix_after_recovery);
  EXPECT_GT(degraded_fixes, 0u);

  // Health state machine walked healthy -> dead -> healthy.
  EXPECT_TRUE(victim_died);
  EXPECT_TRUE(victim_recovered);
  EXPECT_GE(server.ap_state(kVictim).recoveries, 1u);

  // Accuracy degrades boundedly (Fig. 9a: 5 of 6 APs stays decimeter-ish;
  // our simulated office keeps the median well inside a few meters).
  EXPECT_LT(median(errors), 4.0);
}

TEST(FaultMatrix, NanBurstsNeverEscapePush) {
  Feed feed(12);
  StreamingConfig cfg = degradation_config(feed, 3);
  cfg.screen_packets = false;  // let corrupt packets reach the pipeline
  StreamingLocalizer server(kLink, cfg);
  for (const auto& c : feed.captures) server.add_ap(c.pose);

  Rng rng(33);
  std::size_t fixes = 0;
  for (std::size_t p = 0; p < 12; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      CsiPacket packet = feed.captures[a].packets[p];
      for (auto& v : packet.csi.flat()) v = cplx(kNan, kNan);
      std::optional<LocationFix> fix;
      EXPECT_NO_THROW(fix = server.push(a, packet, rng));
      if (fix) {
        ++fixes;
        // Every AP had corrupt CSI: the fix can only come from the
        // RSSI-only floor of the fallback chain.
        EXPECT_TRUE(fix->degraded);
        for (const ApStage stage : fix->round.ap_stages) {
          EXPECT_EQ(stage, ApStage::kRssiOnly);
        }
      }
    }
  }
  EXPECT_GT(fixes + server.failed_rounds(), 0u);
}

TEST(FaultMatrix, AllApsCorruptRecordsRoundFailure) {
  Feed feed(6);
  StreamingConfig cfg = degradation_config(feed, 3);
  cfg.screen_packets = false;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& c : feed.captures) server.add_ap(c.pose);

  Rng rng(34);
  for (std::size_t p = 0; p < 6; ++p) {
    for (std::size_t a = 0; a < feed.captures.size(); ++a) {
      CsiPacket packet = feed.captures[a].packets[p];
      for (auto& v : packet.csi.flat()) v = cplx(kNan, kNan);
      packet.rssi_dbm = kNan;  // not even RSSI survives
      EXPECT_NO_THROW((void)server.push(a, packet, rng));
    }
  }
  EXPECT_GT(server.failed_rounds(), 0u);
  ASSERT_TRUE(server.last_failure().has_value());
  EXPECT_NE(server.last_failure()->reason.find("usable"), std::string::npos);
  EXPECT_EQ(server.fix_count(), 0u);
}

TEST(Degradation, PollFiresDeadlineRoundWithoutPackets) {
  Feed feed(8);
  StreamingConfig cfg = degradation_config(feed, 4);
  StreamingLocalizer server(kLink, cfg);
  for (const auto& c : feed.captures) server.add_ap(c.pose);

  Rng rng(35);
  // Fill only APs 0 and 1 (a quorum); the rest stay silent forever.
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t a = 0; a < 2; ++a) {
      EXPECT_FALSE(server.push(a, feed.captures[a].packets[p], rng));
    }
  }
  // Deadline expires in stream time: a poll alone must fire the round.
  const auto fix = server.poll(10.0, rng);
  ASSERT_TRUE(fix.has_value());
  EXPECT_TRUE(fix->degraded);
  EXPECT_EQ(fix->aps_used.size(), 2u);
  EXPECT_FALSE(fix->reasons.empty());
}

TEST(Degradation, HealthTransitionsOnSilence) {
  Feed feed(40);
  StreamingConfig cfg = degradation_config(feed, 100);  // never fire
  StreamingLocalizer server(kLink, cfg);
  for (const auto& c : feed.captures) server.add_ap(c.pose);

  Rng rng(36);
  // Both APs alive at t ~ 0.
  (void)server.push(0, feed.captures[0].packets[0], rng);
  (void)server.push(1, feed.captures[1].packets[0], rng);
  EXPECT_EQ(server.ap_health(1), ApHealth::kHealthy);

  // AP 1 goes silent; AP 0 keeps streaming and advances stream time.
  CsiPacket p = feed.captures[0].packets[1];
  p.timestamp_s = 0.7;  // silence(1) = 0.7 >= degraded_after 0.5
  (void)server.push(0, p, rng);
  EXPECT_EQ(server.ap_health(1), ApHealth::kDegraded);

  p.timestamp_s = 1.5;  // silence(1) = 1.5 >= dead_after 1.0
  (void)server.push(0, p, rng);
  EXPECT_EQ(server.ap_health(1), ApHealth::kDead);
  EXPECT_EQ(server.ap_health(0), ApHealth::kHealthy);

  // Fresh packet revives AP 1.
  CsiPacket revive = feed.captures[1].packets[1];
  revive.timestamp_s = 1.6;
  (void)server.push(1, revive, rng);
  EXPECT_EQ(server.ap_health(1), ApHealth::kHealthy);
  EXPECT_EQ(server.ap_state(1).recoveries, 1u);
}

TEST(Degradation, LeaveOneOutRejectsLyingAp) {
  // One AP's array pose is mis-surveyed by meters: its bearing is
  // confidently wrong. The LOO residual check should reject it.
  Feed feed(15);
  auto captures = feed.captures;
  captures[0].pose.position += Vec2{5.0, -4.0};

  ServerConfig cfg;
  cfg.localizer.area_min = feed.runner.deployment().area_min;
  cfg.localizer.area_max = feed.runner.deployment().area_max;
  const SpotFiServer server(kLink, cfg);
  Rng rng(37);
  const auto outcome = server.try_localize(captures, rng);
  ASSERT_TRUE(outcome.has_value());
  ASSERT_FALSE(outcome->rejected_aps.empty());
  EXPECT_NE(std::find(outcome->rejected_aps.begin(),
                      outcome->rejected_aps.end(), 0u),
            outcome->rejected_aps.end());
  EXPECT_TRUE(outcome->degraded);
  EXPECT_LT(distance(outcome->location.position, {6.0, 3.5}), 3.0);
}

TEST(Degradation, StrictModeStillBlocksOnAllAps) {
  Feed feed(8);
  StreamingConfig cfg = degradation_config(feed, 4);
  cfg.degradation.enabled = false;
  StreamingLocalizer server(kLink, cfg);
  for (const auto& c : feed.captures) server.add_ap(c.pose);

  Rng rng(38);
  // Quorum of two full groups + expired deadline must NOT fire.
  for (std::size_t p = 0; p < 4; ++p) {
    for (std::size_t a = 0; a < 2; ++a) {
      EXPECT_FALSE(server.push(a, feed.captures[a].packets[p], rng));
    }
  }
  EXPECT_FALSE(server.poll(100.0, rng).has_value());
}

}  // namespace
}  // namespace spotfi
