// Tests for clustering: k-means++ and the Gaussian mixture EM that
// implements the paper's "Gaussian mean clustering" (Sec. 3.2.3).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "cluster/gmm.hpp"
#include "geom/vec2.hpp"

namespace spotfi {
namespace {

/// Three well-separated blobs in 2-D.
RMatrix three_blobs(Rng& rng, std::size_t per_blob = 40) {
  const double centers[3][2] = {{0.0, 0.0}, {10.0, 0.0}, {0.0, 10.0}};
  RMatrix points(3 * per_blob, 2);
  for (std::size_t b = 0; b < 3; ++b) {
    for (std::size_t i = 0; i < per_blob; ++i) {
      points(b * per_blob + i, 0) = centers[b][0] + rng.normal(0.0, 0.5);
      points(b * per_blob + i, 1) = centers[b][1] + rng.normal(0.0, 0.5);
    }
  }
  return points;
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(1);
  const RMatrix points = three_blobs(rng);
  const KMeansResult result = kmeans(points, 3, rng);
  ASSERT_EQ(result.centroids.rows(), 3u);
  // Each true center should be close to some centroid.
  for (const auto& truth : {Vec2{0.0, 0.0}, Vec2{10.0, 0.0}, Vec2{0.0, 10.0}}) {
    double best = 1e9;
    for (std::size_t c = 0; c < 3; ++c) {
      best = std::min(best, std::hypot(result.centroids(c, 0) - truth.x,
                                       result.centroids(c, 1) - truth.y));
    }
    EXPECT_LT(best, 0.5);
  }
  // Points in the same blob share an assignment.
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t ref = result.assignment[b * 40];
    for (std::size_t i = 1; i < 40; ++i) {
      EXPECT_EQ(result.assignment[b * 40 + i], ref);
    }
  }
}

TEST(KMeans, InertiaDecreasesWithMoreClusters) {
  Rng rng(2);
  const RMatrix points = three_blobs(rng);
  Rng r1(3), r2(3);
  const double inertia1 = kmeans(points, 1, r1).inertia;
  const double inertia3 = kmeans(points, 3, r2).inertia;
  EXPECT_GT(inertia1, 5.0 * inertia3);
}

TEST(KMeans, MoreClustersThanPointsShrinks) {
  RMatrix points(2, 2);
  points(0, 0) = 1.0;
  points(1, 0) = 5.0;
  Rng rng(4);
  const KMeansResult result = kmeans(points, 10, rng);
  EXPECT_LE(result.centroids.rows(), 2u);
  EXPECT_NEAR(result.inertia, 0.0, 1e-12);
}

TEST(KMeans, DuplicatePointsCollapse) {
  RMatrix points(5, 1, 3.0);  // five identical points
  Rng rng(5);
  const KMeansResult result = kmeans(points, 3, rng);
  EXPECT_EQ(result.centroids.rows(), 1u);
  EXPECT_NEAR(result.centroids(0, 0), 3.0, 1e-12);
}

TEST(KMeans, SinglePoint) {
  RMatrix points(1, 2);
  points(0, 0) = 7.0;
  points(0, 1) = -2.0;
  Rng rng(6);
  const KMeansResult result = kmeans(points, 5, rng);
  ASSERT_EQ(result.centroids.rows(), 1u);
  EXPECT_DOUBLE_EQ(result.centroids(0, 0), 7.0);
}

TEST(KMeans, EmptyInputThrows) {
  Rng rng(7);
  EXPECT_THROW(kmeans(RMatrix(0, 2), 3, rng), ContractViolation);
  EXPECT_THROW(kmeans(RMatrix(3, 2), 0, rng), ContractViolation);
}

TEST(KMeans, DeterministicGivenRngState) {
  Rng rng(8);
  const RMatrix points = three_blobs(rng);
  Rng r1(9), r2(9);
  const KMeansResult a = kmeans(points, 3, r1);
  const KMeansResult b = kmeans(points, 3, r2);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_DOUBLE_EQ(a.inertia, b.inertia);
}

TEST(Gmm, RecoversBlobMeansAndVariances) {
  Rng rng(10);
  const RMatrix points = three_blobs(rng, 80);
  const GmmResult result = fit_gmm(points, 3, rng);
  ASSERT_EQ(result.components.size(), 3u);
  for (const auto& truth : {Vec2{0.0, 0.0}, Vec2{10.0, 0.0}, Vec2{0.0, 10.0}}) {
    double best = 1e9;
    std::size_t best_c = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      const double d = std::hypot(result.components[c].mean[0] - truth.x,
                                  result.components[c].mean[1] - truth.y);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    EXPECT_LT(best, 0.3);
    // True per-axis variance is 0.25.
    EXPECT_NEAR(result.components[best_c].variance[0], 0.25, 0.15);
    EXPECT_NEAR(result.components[best_c].variance[1], 0.25, 0.15);
    EXPECT_NEAR(result.components[best_c].weight, 1.0 / 3.0, 0.05);
  }
}

TEST(Gmm, SoftClusteringSeparatesOverlappingBlobsByWeight) {
  // Two blobs with very different populations.
  Rng rng(11);
  RMatrix points(120, 1);
  for (std::size_t i = 0; i < 100; ++i) {
    points(i, 0) = rng.normal(0.0, 1.0);
  }
  for (std::size_t i = 100; i < 120; ++i) {
    points(i, 0) = rng.normal(8.0, 1.0);
  }
  const GmmResult result = fit_gmm(points, 2, rng);
  ASSERT_EQ(result.components.size(), 2u);
  const auto& big = result.components[0].weight > result.components[1].weight
                        ? result.components[0]
                        : result.components[1];
  EXPECT_NEAR(big.weight, 100.0 / 120.0, 0.08);
  EXPECT_NEAR(big.mean[0], 0.0, 0.5);
}

TEST(Gmm, LogLikelihoodIsMonotone) {
  // EM must not decrease the data log-likelihood; we check the final value
  // beats the k-means initialization by running with 1 vs many iterations.
  Rng rng(12);
  const RMatrix points = three_blobs(rng);
  Rng r1(13), r2(13);
  GmmConfig one_iter;
  one_iter.max_iterations = 1;
  const GmmResult early = fit_gmm(points, 3, r1, one_iter);
  const GmmResult late = fit_gmm(points, 3, r2);
  EXPECT_GE(late.log_likelihood, early.log_likelihood - 1e-9);
}

TEST(Gmm, VarianceFloorPreventsCollapse) {
  // Many identical points + one outlier: components must keep a positive
  // variance.
  RMatrix points(20, 1, 2.0);
  points(19, 0) = 9.0;
  Rng rng(14);
  const GmmResult result = fit_gmm(points, 2, rng);
  for (const auto& c : result.components) {
    EXPECT_GT(c.variance[0], 0.0);
  }
}

TEST(Gmm, AssignmentCoversAllComponentsOfSeparatedData) {
  Rng rng(15);
  const RMatrix points = three_blobs(rng);
  const GmmResult result = fit_gmm(points, 3, rng);
  std::set<std::size_t> used(result.assignment.begin(),
                             result.assignment.end());
  EXPECT_EQ(used.size(), 3u);
}

TEST(Gmm, InvalidArgumentsThrow) {
  Rng rng(16);
  EXPECT_THROW(fit_gmm(RMatrix(0, 2), 2, rng), ContractViolation);
  EXPECT_THROW(fit_gmm(RMatrix(4, 2), 0, rng), ContractViolation);
}

}  // namespace
}  // namespace spotfi
