// Cross-module integration tests: the full SpotFi pipeline driven
// end-to-end through realistic paths — simulator -> trace formats ->
// sanitization -> super-resolution -> clustering -> localization — plus
// system-level properties (determinism, the value of Algorithm 1, both
// front ends, regridded 20 MHz input, tracking over a moving target).
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/angles.hpp"
#include "core/tracker.hpp"
#include "csi/intel5300.hpp"
#include "csi/regrid.hpp"
#include "csi/sanitize.hpp"
#include "csi/trace.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

ExperimentRunner office_runner(std::size_t packets = 12) {
  ExperimentConfig config;
  config.packets_per_group = packets;
  return {kLink, office_deployment(), config};
}

TEST(Integration, OfficeTargetsLocalizeWithinTwoMetersMedian) {
  const auto runner = office_runner();
  Rng rng(1);
  std::vector<double> errors;
  for (const Vec2 target : {Vec2{6.0, 3.5}, Vec2{8.0, 5.5}, Vec2{10.0, 5.5},
                            Vec2{4.0, 7.5}, Vec2{12.0, 3.5}}) {
    errors.push_back(runner.run_target(target, rng).error_m);
  }
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[errors.size() / 2], 2.0);  // median of 5 targets
}

TEST(Integration, WholePipelineIsDeterministic) {
  const auto runner = office_runner(6);
  Rng r1(9), r2(9);
  const TargetRun a = runner.run_target({10.0, 5.5}, r1);
  const TargetRun b = runner.run_target({10.0, 5.5}, r2);
  EXPECT_EQ(a.round.location.position, b.round.location.position);
  ASSERT_EQ(a.round.ap_results.size(), b.round.ap_results.size());
  for (std::size_t i = 0; i < a.round.ap_results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.round.ap_results[i].observation.direct_aoa_rad,
                     b.round.ap_results[i].observation.direct_aoa_rad);
  }
}

TEST(Integration, PipelineThroughSpotfiTraceFormat) {
  // Write captures to the library's trace format, read back, localize:
  // quantization must not break decimeter-scale localization.
  const auto runner = office_runner();
  Rng rng(2);
  const Vec2 target{8.0, 5.5};
  const auto captures = runner.simulate_captures(target, rng);

  std::vector<ApCapture> replayed;
  for (const auto& capture : captures) {
    std::stringstream ss;
    write_trace(ss, kLink, capture.packets);
    const Trace trace = read_trace(ss);
    ApCapture rc;
    rc.pose = capture.pose;
    rc.packets = trace.packets;
    replayed.push_back(std::move(rc));
  }
  ServerConfig config;
  config.localizer.area_min = runner.deployment().area_min;
  config.localizer.area_max = runner.deployment().area_max;
  const SpotFiServer server(kLink, config);
  const auto round = server.localize(replayed, rng);
  EXPECT_LT(distance(round.location.position, target), 2.0);
}

TEST(Integration, PipelineThroughCsitoolFormat) {
  // Same through the genuine csitool framing, including its RSSI
  // encoding (rssi slot -> dBm via -44 - agc).
  const auto runner = office_runner();
  Rng rng(3);
  const Vec2 target{6.0, 5.5};
  const auto captures = runner.simulate_captures(target, rng);

  std::vector<ApCapture> replayed;
  for (const auto& capture : captures) {
    std::vector<BfeeRecord> records;
    for (const auto& packet : capture.packets) {
      records.push_back(make_bfee(packet.csi, packet.rssi_dbm,
                                  static_cast<std::uint32_t>(
                                      packet.timestamp_s * 1e6)));
    }
    std::stringstream ss;
    write_csitool_log(ss, records);
    const auto decoded = read_csitool_log(ss);

    ApCapture rc;
    rc.pose = capture.pose;
    for (const auto& rec : decoded) {
      CsiPacket packet;
      packet.csi = rec.scaled_csi();
      packet.rssi_dbm = rec.total_rss_dbm();
      packet.timestamp_s = static_cast<double>(rec.timestamp_low) * 1e-6;
      rc.packets.push_back(std::move(packet));
    }
    replayed.push_back(std::move(rc));
  }
  ServerConfig config;
  config.localizer.area_min = runner.deployment().area_min;
  config.localizer.area_max = runner.deployment().area_max;
  const SpotFiServer server(kLink, config);
  const auto round = server.localize(replayed, rng);
  EXPECT_LT(distance(round.location.position, target), 2.0);
}

TEST(Integration, SanitizationImprovesDirectPathClustering) {
  // Algorithm 1's ablation at the system level: without it, per-packet
  // STO scatter inflates the ToF variance of every cluster.
  const auto runner = office_runner(20);
  Rng rng(4);
  const auto captures = runner.simulate_captures({6.0, 3.5}, rng);

  ApProcessorConfig with, without;
  without.sanitize = false;
  const ApProcessor p_with(kLink, captures[0].pose, with);
  const ApProcessor p_without(kLink, captures[0].pose, without);
  const ApResult r_with = p_with.process(captures[0].packets, rng);
  const ApResult r_without = p_without.process(captures[0].packets, rng);

  // The tightest *populated* cluster (the direct path) should be far
  // tighter in ToF with sanitization than without; singleton clusters
  // have zero variance by construction and are excluded.
  auto min_sigma_tof = [](const ApResult& r) {
    double best = 1e9;
    for (const auto& c : r.clusters) {
      if (c.count >= 5) best = std::min(best, c.sigma_tof);
    }
    return best;
  };
  EXPECT_LT(min_sigma_tof(r_with), 0.5 * min_sigma_tof(r_without));
}

TEST(Integration, EspritFrontEndLocalizesToo) {
  ExperimentConfig config;
  config.packets_per_group = 12;
  config.server.ap.front_end = FrontEnd::kEsprit;
  const ExperimentRunner runner(kLink, office_deployment(), config);
  Rng rng(5);
  const TargetRun run = runner.run_target({8.0, 5.5}, rng);
  EXPECT_LT(run.error_m, 2.5);
}

TEST(Integration, Regridded20MhzPipeline) {
  // Synthesize on the true non-uniform 20 MHz report grid for one free
  // space link, regrid, and run the per-AP stage.
  LinkConfig link20 = LinkConfig::intel5300_20mhz();
  const auto grid = SubcarrierGrid::intel5300_20mhz();
  const ArrayPose pose{{0.0, 0.0}, 0.0};
  const Vec2 target{7.0, 2.0};

  // Manual per-grid synthesis (one direct path), with STO per packet.
  Rng rng(6);
  std::vector<CsiPacket> packets;
  const double tof = distance(pose.position, target) / kSpeedOfLight;
  const double aoa = pose.aoa_of(target);
  LinkConfig regridded_link;
  for (int p = 0; p < 8; ++p) {
    const double sto = rng.uniform(20e-9, 80e-9);
    CMatrix csi(link20.n_antennas, grid.size());
    const double phi_arg = -2.0 * kPi * link20.antenna_spacing_m *
                           std::sin(aoa) * link20.carrier_hz / kSpeedOfLight;
    for (std::size_t m = 0; m < csi.rows(); ++m) {
      for (std::size_t k = 0; k < grid.size(); ++k) {
        const double df = grid.offset_hz(k) - grid.offset_hz(0);
        csi(m, k) = std::polar(
            1.0, phi_arg * static_cast<double>(m) -
                     2.0 * kPi * df * (tof + sto) +
                     0.001 * rng.normal());
      }
    }
    const RegridResult out = regrid_csi(csi, grid, link20, 30);
    regridded_link = out.link;
    CsiPacket packet;
    packet.csi = out.csi;
    packet.rssi_dbm = -50.0;
    packet.timestamp_s = 0.1 * p;
    packets.push_back(std::move(packet));
  }

  const ApProcessor processor(regridded_link, pose, {});
  const ApResult result = processor.process(packets, rng);
  EXPECT_NEAR(rad_to_deg(result.observation.direct_aoa_rad),
              rad_to_deg(aoa), 3.0);
}

TEST(Integration, TrackerFollowsMovingTarget) {
  const auto runner = office_runner(10);
  TrackerConfig cfg;
  cfg.acceleration_sigma = 1.5;
  LocationTracker tracker(cfg);
  Rng rng(7);
  double worst_tracked = 0.0;
  for (int i = 0; i < 8; ++i) {
    const Vec2 truth{3.0 + 1.2 * i, 4.0};
    const TargetRun run = runner.run_target(truth, rng);
    const Vec2 tracked =
        tracker.update(run.round.location.position, 1.5 * i);
    worst_tracked = std::max(worst_tracked, distance(tracked, truth));
  }
  EXPECT_LT(worst_tracked, 4.0);
}

TEST(Integration, WaveformModeLocalizes) {
  // Full experiment with CSI produced by the OFDM waveform chain instead
  // of the analytic model.
  ExperimentConfig config;
  config.packets_per_group = 8;
  config.use_phy_waveform = true;
  const ExperimentRunner runner(kLink, office_deployment(), config);
  Rng rng(12);
  std::vector<double> errors;
  for (const Vec2 target : {Vec2{6.0, 3.5}, Vec2{8.0, 5.5}, Vec2{10.0, 5.5}}) {
    errors.push_back(runner.run_target(target, rng).error_m);
  }
  std::sort(errors.begin(), errors.end());
  EXPECT_LT(errors[1], 2.5);  // median of three targets
}

TEST(Integration, WaveformStoSurvivesSanitization) {
  // The waveform source's per-packet timing jitter must behave like a
  // real STO: Algorithm 1 removes it, leaving consistent sanitized CSI.
  PhyConfig phy;
  ImpairmentConfig imp;
  imp.sto_base_s = 60e-9;
  imp.sto_jitter_s = 20e-9;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.max_snr_db = 45.0;
  imp.rssi_shadowing_db = 0.0;
  imp.phase_calibration_sigma_rad = 0.0;
  imp.gain_calibration_sigma_db = 0.0;
  const PhyCsiSynthesizer source(phy, imp);

  PathComponent p;
  p.aoa_rad = deg_to_rad(15.0);
  p.tof_s = 40e-9;
  p.gain_db = -50.0;
  p.is_direct = true;
  Rng rng(13);
  const auto burst = source.synthesize_burst(
      std::span<const PathComponent>(&p, 1), 6, 0.1, rng);

  const LinkConfig link = source.reported_link();
  CMatrix first;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    CMatrix clean = sanitize_tof(burst[i].csi, link).csi;
    // Remove the arbitrary common phase before comparing packets.
    const cplx rot = std::conj(clean(0, 0)) / std::abs(clean(0, 0));
    for (auto& v : clean.flat()) v *= rot;
    if (i == 0) {
      first = clean;
    } else {
      EXPECT_LT((clean - first).max_abs(), 0.15 * first.max_abs())
          << "packet " << i;
    }
  }
}

TEST(Integration, HigherSnrNeverHurtsMuch) {
  // Property: turning off every impairment must not make localization
  // worse than the fully impaired run (sanity of the noise model).
  ExperimentConfig clean_cfg;
  clean_cfg.packets_per_group = 10;
  clean_cfg.impairments.quantize_8bit = false;
  clean_cfg.impairments.rssi_shadowing_db = 0.0;
  clean_cfg.impairments.max_snr_db = 60.0;
  clean_cfg.impairments.phase_calibration_sigma_rad = 0.0;
  clean_cfg.impairments.gain_calibration_sigma_db = 0.0;
  const ExperimentRunner clean(kLink, office_deployment(), clean_cfg);
  const ExperimentRunner impaired(kLink, office_deployment(), {});

  double clean_total = 0.0, impaired_total = 0.0;
  for (const Vec2 target : {Vec2{6.0, 3.5}, Vec2{10.0, 5.5}, Vec2{4.0, 7.5}}) {
    Rng r1(8), r2(8);
    clean_total += clean.run_target(target, r1).error_m;
    impaired_total += impaired.run_target(target, r2).error_m;
  }
  EXPECT_LT(clean_total, impaired_total + 1.0);
}

}  // namespace
}  // namespace spotfi
