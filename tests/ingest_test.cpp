// Tests for the fail-soft CSI ingestion layer: resynchronizing readers
// (CsitoolReader, TraceReader), the IngestError taxonomy, byte-exact
// IngestReport accounting, the byte-level fault injector, writer-side
// guards, and the StreamingLocalizer ingest surface.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "channel/faults.hpp"
#include "common/rng.hpp"
#include "core/streaming.hpp"
#include "csi/intel5300.hpp"
#include "csi/trace.hpp"

namespace spotfi {
namespace {

using Bytes = std::vector<std::uint8_t>;

// --- helpers ---------------------------------------------------------------

BfeeRecord random_record(Rng& rng, std::uint32_t timestamp,
                         std::uint8_t n_rx = 3) {
  BfeeRecord rec;
  rec.timestamp_low = timestamp;
  rec.bfee_count = static_cast<std::uint16_t>(rng());
  rec.n_rx = n_rx;
  rec.n_tx = 1;
  rec.rssi_a = 60;
  rec.rssi_b = 58;
  rec.rssi_c = 0;  // absent
  rec.noise = -90;
  rec.agc = 30;
  rec.antenna_sel = 0x24;
  rec.csi = CMatrix(n_rx, 30);
  for (auto& v : rec.csi.flat()) {
    v = cplx(std::floor(rng.uniform(-128.0, 128.0)),
             std::floor(rng.uniform(-128.0, 128.0)));
  }
  rec.csi(0, 0) = cplx(100.0, -50.0);  // CSI can never be all zero
  return rec;
}

Bytes csitool_bytes(std::span<const BfeeRecord> records) {
  std::ostringstream os;
  write_csitool_log(os, records);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

CsiPacket random_packet(const LinkConfig& link, Rng& rng, double timestamp_s) {
  CsiPacket p;
  p.timestamp_s = timestamp_s;
  p.rssi_dbm = -50.0;
  p.csi = CMatrix(link.n_antennas, link.n_subcarriers);
  for (auto& v : p.csi.flat()) {
    v = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  }
  p.csi(0, 0) = cplx(0.9, -0.4);
  return p;
}

Bytes trace_bytes(const LinkConfig& link, std::span<const CsiPacket> packets) {
  std::ostringstream os;
  write_trace(os, link, packets);
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

std::istringstream stream_of(const Bytes& bytes) {
  return std::istringstream(
      std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size()));
}

struct CsitoolDrain {
  std::vector<BfeeRecord> records;
  std::vector<IngestError> errors;
  IngestReport report;
};

CsitoolDrain drain_csitool(const Bytes& bytes) {
  auto is = stream_of(bytes);
  CsitoolReader reader(is);
  CsitoolDrain out;
  while (auto item = reader.next()) {
    if (*item) {
      out.records.push_back(std::move(item->value()));
    } else {
      out.errors.push_back(item->error());
    }
  }
  out.report = reader.report();
  // The accounting invariant holds for every input, so check it here for
  // every scenario that goes through this helper.
  EXPECT_EQ(out.report.bytes_consumed(), bytes.size());
  EXPECT_EQ(out.report.records_accepted, out.records.size());
  EXPECT_EQ(out.report.records_dropped(), out.errors.size());
  return out;
}

struct TraceDrain {
  std::vector<CsiPacket> packets;
  std::vector<IngestError> errors;
  IngestReport report;
  bool header_ok = false;
  LinkConfig link;
};

TraceDrain drain_trace(const Bytes& bytes) {
  auto is = stream_of(bytes);
  TraceReader reader(is);
  TraceDrain out;
  out.header_ok = reader.header_ok();
  while (auto item = reader.next()) {
    if (*item) {
      out.packets.push_back(std::move(item->value()));
    } else {
      out.errors.push_back(item->error());
    }
  }
  out.link = reader.link();
  out.report = reader.report();
  EXPECT_EQ(out.report.bytes_consumed(), bytes.size());
  EXPECT_EQ(out.report.records_accepted, out.packets.size());
  EXPECT_EQ(out.report.records_dropped(), out.errors.size());
  return out;
}

// Frame geometry for the default 3-antenna csitool record: u16 length +
// code byte + 20-byte bfee header + bit-packed payload of
// (30*(3*16+3)+7)/8 = 192 bytes.
constexpr std::size_t kPayload3 = 192;
constexpr std::size_t kFrame3 = 2 + 1 + 20 + kPayload3;

// --- csitool: round trips --------------------------------------------------

TEST(CsitoolIngest, RoundTripNoErrors) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    std::vector<BfeeRecord> records;
    const auto n = 3 + rng.uniform_index(20);
    for (std::uint32_t i = 0; i < n; ++i) {
      records.push_back(random_record(
          rng, i, static_cast<std::uint8_t>(1 + rng.uniform_index(3))));
    }
    const auto out = drain_csitool(csitool_bytes(records));
    ASSERT_EQ(out.records.size(), records.size()) << "seed " << seed;
    EXPECT_TRUE(out.errors.empty());
    EXPECT_EQ(out.report.records_recovered, 0u);
    EXPECT_EQ(out.report.bytes_skipped, 0u);
    EXPECT_EQ(out.report.resyncs, 0u);
    for (std::size_t i = 0; i < records.size(); ++i) {
      EXPECT_EQ(out.records[i].timestamp_low, records[i].timestamp_low);
      EXPECT_EQ(out.records[i].csi, records[i].csi);
    }
  }
}

// --- csitool: one regression per error class -------------------------------

TEST(CsitoolIngest, PartialTrailingHeaderReported) {
  // Satellite fix: a 1-byte partial frame header used to be silently
  // swallowed as clean EOF.
  Rng rng(2);
  std::vector<BfeeRecord> records{random_record(rng, 7)};
  Bytes blob = csitool_bytes(records);
  blob.push_back(0x00);
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.records.size(), 1u);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kTruncatedHeader);
  EXPECT_EQ(out.errors[0].offset, blob.size() - 1);
  EXPECT_EQ(out.report.bytes_skipped, 1u);

  // The strict reader reports it too instead of swallowing it.
  auto is = stream_of(blob);
  EXPECT_THROW((void)read_csitool_log(is), ParseError);
}

TEST(CsitoolIngest, ZeroLengthFrameRecoversFollowingRecords) {
  Rng rng(3);
  std::vector<BfeeRecord> records{random_record(rng, 1), random_record(rng, 2)};
  Bytes blob = csitool_bytes(records);
  blob.insert(blob.begin(), {0x00, 0x00});  // zero-length frame up front
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kBadFrameLength);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.report.records_recovered, 2u);
  EXPECT_EQ(out.report.resyncs, 1u);
}

TEST(CsitoolIngest, CorruptPayloadLengthDropsOneFrameOnly) {
  Rng rng(4);
  std::vector<BfeeRecord> records{random_record(rng, 1), random_record(rng, 2),
                                  random_record(rng, 3)};
  Bytes blob = csitool_bytes(records);
  blob[19] = 0x7F;  // clobber record 0's bfee payload length field
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kPayloadMismatch);
  EXPECT_EQ(out.errors[0].offset, 0u);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[0].timestamp_low, 2u);
  EXPECT_EQ(out.records[1].timestamp_low, 3u);
  EXPECT_EQ(out.report.records_recovered, 2u);
}

TEST(CsitoolIngest, RssiAbsentSurfacesAsIngestErrorNotContractViolation) {
  // Satellite fix: an all-zero-RSSI record used to decode fine and then
  // throw ContractViolation from total_rss_dbm()/scaled_csi() in
  // whatever downstream code touched it first.
  Rng rng(5);
  std::vector<BfeeRecord> records{random_record(rng, 1), random_record(rng, 2)};
  Bytes blob = csitool_bytes(records);
  blob[13] = blob[14] = blob[15] = 0;  // rssi a/b/c of record 0
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kRssiAbsent);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].timestamp_low, 2u);
  // Accepted records satisfy the validated-record contract.
  EXPECT_NO_THROW((void)out.records[0].total_rss_dbm());
  EXPECT_NO_THROW((void)out.records[0].scaled_csi());
  // Framing was intact: no resync needed to drop a semantically bad
  // record.
  EXPECT_EQ(out.report.resyncs, 0u);
}

TEST(CsitoolIngest, ZeroCsiSurfacesAsIngestError) {
  Rng rng(6);
  std::vector<BfeeRecord> records{random_record(rng, 1), random_record(rng, 2)};
  Bytes blob = csitool_bytes(records);
  std::fill(blob.begin() + 23, blob.begin() + 23 + kPayload3,
            0);  // record 0 payload
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kZeroCsi);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].timestamp_low, 2u);
}

TEST(CsitoolIngest, TruncatedTailReportedAsTrailingGarbage) {
  Rng rng(7);
  std::vector<BfeeRecord> records{random_record(rng, 1), random_record(rng, 2)};
  Bytes blob = csitool_bytes(records);
  blob.resize(blob.size() - 11);  // cut record 1 mid-payload
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_EQ(out.records[0].timestamp_low, 1u);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kTrailingGarbage);
  EXPECT_EQ(out.errors[0].offset, kFrame3);
}

TEST(CsitoolIngest, GarbageInterleaveRecoversByResync) {
  Rng rng(8);
  std::vector<BfeeRecord> records{random_record(rng, 1), random_record(rng, 2)};
  Bytes blob = csitool_bytes(records);
  const Bytes garbage{0xDE, 0xAD, 0xBE, 0xEF, 0x55, 0xAA};
  blob.insert(blob.begin() + kFrame3, garbage.begin(), garbage.end());
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.records.size(), 2u);
  EXPECT_EQ(out.records[1].timestamp_low, 2u);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.report.resyncs, 1u);
  EXPECT_EQ(out.report.bytes_skipped, garbage.size());
  EXPECT_EQ(out.report.records_recovered, 1u);
}

TEST(CsitoolIngest, ForeignFramesCountedNotDropped) {
  Rng rng(9);
  std::vector<BfeeRecord> records{random_record(rng, 1)};
  Bytes blob = csitool_bytes(records);
  const Bytes foreign{0x00, 0x05, 0xC1, 1, 2, 3, 4};
  blob.insert(blob.begin(), foreign.begin(), foreign.end());
  const auto out = drain_csitool(blob);
  ASSERT_EQ(out.records.size(), 1u);
  EXPECT_TRUE(out.errors.empty());
  EXPECT_EQ(out.report.frames_foreign, 1u);
  EXPECT_EQ(out.report.bytes_skipped, 0u);
}

// --- trace: round trips and error classes ----------------------------------

TEST(TraceIngest, RoundTripNoErrors) {
  const LinkConfig link;
  Rng rng(11);
  std::vector<CsiPacket> packets;
  for (int i = 0; i < 12; ++i) {
    packets.push_back(random_packet(link, rng, 0.01 * i));
  }
  const auto out = drain_trace(trace_bytes(link, packets));
  ASSERT_TRUE(out.header_ok);
  ASSERT_EQ(out.packets.size(), packets.size());
  EXPECT_TRUE(out.errors.empty());
  EXPECT_EQ(out.report.bytes_skipped, 0u);
  for (std::size_t i = 0; i < packets.size(); ++i) {
    EXPECT_NEAR(out.packets[i].timestamp_s, packets[i].timestamp_s, 1e-9);
  }
}

TEST(TraceIngest, BadMagicIsSingleHeaderError) {
  const LinkConfig link;
  Rng rng(12);
  std::vector<CsiPacket> packets{random_packet(link, rng, 0.0)};
  Bytes blob = trace_bytes(link, packets);
  blob[0] = 'X';
  const auto out = drain_trace(blob);
  EXPECT_FALSE(out.header_ok);
  EXPECT_TRUE(out.packets.empty());
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kBadFileHeader);
  // Every byte of the unusable file is accounted as skipped.
  EXPECT_EQ(out.report.bytes_skipped, blob.size());
}

TEST(TraceIngest, NonFiniteHeaderRejected) {
  const LinkConfig link;
  Bytes blob = trace_bytes(link, {});
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::memcpy(blob.data() + 6, &nan, sizeof(nan));  // carrier_hz
  const auto out = drain_trace(blob);
  EXPECT_FALSE(out.header_ok);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kBadFileHeader);
}

TEST(TraceIngest, TamperedShapeDropsOneRecordOnly) {
  const LinkConfig link;
  const std::size_t pitch = 19 + 2 * link.n_antennas * link.n_subcarriers;
  Rng rng(13);
  std::vector<CsiPacket> packets;
  for (int i = 0; i < 3; ++i) {
    packets.push_back(random_packet(link, rng, 0.01 * i));
  }
  Bytes blob = trace_bytes(link, packets);
  blob[32 + pitch + 8] = 9;  // record 1's Nrx byte
  const auto out = drain_trace(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kPayloadMismatch);
  ASSERT_EQ(out.packets.size(), 2u);
  EXPECT_NEAR(out.packets[1].timestamp_s, 0.02, 1e-9);
  EXPECT_EQ(out.report.resyncs, 1u);
  EXPECT_EQ(out.report.records_recovered, 1u);
}

TEST(TraceIngest, NonFiniteScaleDropped) {
  const LinkConfig link;
  Rng rng(14);
  std::vector<CsiPacket> packets{random_packet(link, rng, 0.0),
                                 random_packet(link, rng, 0.01)};
  Bytes blob = trace_bytes(link, packets);
  const float nan = std::numeric_limits<float>::quiet_NaN();
  std::memcpy(blob.data() + 32 + 15, &nan, sizeof(nan));  // record 0's scale
  const auto out = drain_trace(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kNonFiniteValue);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.report.resyncs, 0u);  // fixed pitch: no resync needed
}

TEST(TraceIngest, RssiAbsentDropped) {
  const LinkConfig link;
  Rng rng(15);
  std::vector<CsiPacket> packets{random_packet(link, rng, 0.0),
                                 random_packet(link, rng, 0.01)};
  Bytes blob = trace_bytes(link, packets);
  blob[32 + 10] = 0x7f;  // record 0's rssi_a -> absent marker
  const auto out = drain_trace(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kRssiAbsent);
  ASSERT_EQ(out.packets.size(), 1u);
}

TEST(TraceIngest, ZeroCsiDropped) {
  const LinkConfig link;
  const std::size_t pitch = 19 + 2 * link.n_antennas * link.n_subcarriers;
  Rng rng(16);
  std::vector<CsiPacket> packets{random_packet(link, rng, 0.0),
                                 random_packet(link, rng, 0.01)};
  Bytes blob = trace_bytes(link, packets);
  std::fill(blob.begin() + 32 + 19, blob.begin() + 32 + pitch, 0);
  const auto out = drain_trace(blob);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kZeroCsi);
  ASSERT_EQ(out.packets.size(), 1u);
}

TEST(TraceIngest, TruncatedTailReported) {
  const LinkConfig link;
  Rng rng(17);
  std::vector<CsiPacket> packets{random_packet(link, rng, 0.0),
                                 random_packet(link, rng, 0.01)};
  Bytes blob = trace_bytes(link, packets);
  blob.resize(blob.size() - 25);
  const auto out = drain_trace(blob);
  ASSERT_EQ(out.packets.size(), 1u);
  ASSERT_EQ(out.errors.size(), 1u);
  EXPECT_EQ(out.errors[0].kind, IngestErrorKind::kTrailingGarbage);
}

// --- the acceptance-criterion recovery guarantee ---------------------------

struct ClassPlan {
  const char* name;
  ByteFaultPlan plan;
};

std::vector<ClassPlan> recovery_plans() {
  std::vector<ClassPlan> plans;
  ByteFaultPlan p;
  p.bit_flip_prob = 0.05;
  plans.push_back({"bit-flip", p});
  p = {};
  p.truncate_prob = 0.05;
  plans.push_back({"truncate", p});
  p = {};
  p.garbage_prob = 0.05;
  plans.push_back({"garbage", p});
  p = {};
  p.duplicate_prob = 0.05;
  plans.push_back({"duplicate", p});
  p = {};
  p.length_tamper_prob = 0.05;
  plans.push_back({"length-tamper", p});
  return plans;
}

TEST(RecoveryRate, CsitoolFivePercentPerClass) {
  constexpr std::size_t kRecords = 1000;
  Rng gen_rng(21);
  std::vector<BfeeRecord> records;
  records.reserve(kRecords);
  for (std::uint32_t i = 0; i < kRecords; ++i) {
    records.push_back(random_record(gen_rng, i));
  }
  const Bytes clean = csitool_bytes(records);

  std::uint64_t corrupt_seed = 100;
  for (const auto& [name, plan] : recovery_plans()) {
    Rng rng(corrupt_seed++);
    ByteFaultStats stats;
    const Bytes dirty = corrupt_csitool_log(clean, plan, rng, &stats);

    // Zero exceptions escaping: drain_csitool calls next() bare.
    const auto out = drain_csitool(dirty);

    std::vector<bool> corrupted(kRecords, false);
    for (const std::size_t f : stats.corrupted_frames) corrupted[f] = true;
    const std::size_t n_uncorrupted =
        kRecords - stats.corrupted_frames.size();

    std::vector<bool> seen(kRecords, false);
    std::size_t recovered_uncorrupted = 0;
    for (const auto& rec : out.records) {
      if (rec.timestamp_low >= kRecords) continue;
      if (corrupted[rec.timestamp_low] || seen[rec.timestamp_low]) continue;
      seen[rec.timestamp_low] = true;
      ++recovered_uncorrupted;
    }
    EXPECT_GE(recovered_uncorrupted,
              static_cast<std::size_t>(0.9 * n_uncorrupted))
        << "class " << name << ": " << out.report.summary();
    // Every byte accounted (also asserted inside drain_csitool).
    EXPECT_EQ(out.report.bytes_consumed(), dirty.size()) << "class " << name;
  }
}

TEST(RecoveryRate, TraceFivePercentPerClass) {
  constexpr std::size_t kRecords = 1000;
  const LinkConfig link;
  Rng gen_rng(22);
  std::vector<CsiPacket> packets;
  packets.reserve(kRecords);
  for (std::size_t i = 0; i < kRecords; ++i) {
    packets.push_back(random_packet(link, gen_rng, 0.01 * i));
  }
  const Bytes clean = trace_bytes(link, packets);

  std::uint64_t corrupt_seed = 200;
  for (const auto& [name, plan] : recovery_plans()) {
    Rng rng(corrupt_seed++);
    ByteFaultStats stats;
    const Bytes dirty = corrupt_trace_log(clean, plan, rng, &stats);

    const auto out = drain_trace(dirty);
    ASSERT_TRUE(out.header_ok) << "class " << name;

    std::vector<bool> corrupted(kRecords, false);
    for (const std::size_t f : stats.corrupted_frames) corrupted[f] = true;
    const std::size_t n_uncorrupted =
        kRecords - stats.corrupted_frames.size();

    std::vector<bool> seen(kRecords, false);
    std::size_t recovered_uncorrupted = 0;
    for (const auto& p : out.packets) {
      const auto idx = static_cast<std::size_t>(std::llround(p.timestamp_s * 100.0));
      if (idx >= kRecords) continue;
      if (corrupted[idx] || seen[idx]) continue;
      seen[idx] = true;
      ++recovered_uncorrupted;
    }
    EXPECT_GE(recovered_uncorrupted,
              static_cast<std::size_t>(0.9 * n_uncorrupted))
        << "class " << name << ": " << out.report.summary();
    EXPECT_EQ(out.report.bytes_consumed(), dirty.size()) << "class " << name;
  }
}

TEST(RecoveryRate, DuplicatedFramesYieldDuplicateRecords) {
  Rng gen_rng(23);
  std::vector<BfeeRecord> records;
  for (std::uint32_t i = 0; i < 10; ++i) {
    records.push_back(random_record(gen_rng, i));
  }
  ByteFaultPlan plan;
  plan.duplicate_prob = 1.0;
  Rng rng(24);
  ByteFaultStats stats;
  const Bytes dirty = corrupt_csitool_log(csitool_bytes(records), plan, rng,
                                          &stats);
  EXPECT_EQ(stats.frames_duplicated, 10u);
  EXPECT_TRUE(stats.corrupted_frames.empty());
  const auto out = drain_csitool(dirty);
  EXPECT_EQ(out.records.size(), 20u);
  EXPECT_TRUE(out.errors.empty());
}

TEST(RecoveryRate, CrossFrameDuplicatesLandBehindNewerFrames) {
  Rng gen_rng(31);
  std::vector<BfeeRecord> records;
  for (std::uint32_t i = 0; i < 10; ++i) {
    records.push_back(random_record(gen_rng, i));
  }
  ByteFaultPlan plan;
  plan.duplicate_prob = 1.0;
  plan.duplicate_gap_max = 3;  // copies resurface up to 3 frames later
  Rng rng(32);
  ByteFaultStats stats;
  const Bytes dirty =
      corrupt_csitool_log(csitool_bytes(records), plan, rng, &stats);
  EXPECT_EQ(stats.frames_duplicated, 10u);
  const auto out = drain_csitool(dirty);
  ASSERT_EQ(out.records.size(), 20u);
  EXPECT_TRUE(out.errors.empty());
  // Every original shows up exactly twice...
  std::vector<int> copies(10, 0);
  for (const auto& rec : out.records) ++copies[rec.timestamp_low];
  for (const int c : copies) EXPECT_EQ(c, 2);
  // ...but not as adjacent pairs: at least one retransmitted copy was
  // overtaken by newer frames (the behavior duplicate_gap_max adds).
  bool non_adjacent = false;
  for (std::size_t k = 0; k + 1 < out.records.size(); k += 2) {
    non_adjacent = non_adjacent || out.records[k].timestamp_low !=
                                       out.records[k + 1].timestamp_low;
  }
  EXPECT_TRUE(non_adjacent);
}

TEST(RecoveryRate, TraceResyncRecoversAtADuplicatedFrameBoundary) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  Rng rng(41);
  std::vector<CsiPacket> packets;
  for (int i = 0; i < 6; ++i) {
    packets.push_back(random_packet(link, rng, 0.01 * i));
  }
  const Bytes clean = trace_bytes(link, packets);
  constexpr std::size_t kHeader = 4 + 2 + 3 * 8 + 1 + 1;
  const std::size_t pitch =
      (8 + 7 + 4) + 2 * link.n_antennas * link.n_subcarriers;
  ASSERT_EQ(clean.size(), kHeader + 6 * pitch);

  // Splice the headless tail of record 1 immediately in front of its
  // full duplicate: a retransmission whose head was lost. The reader
  // loses framing inside the torn bytes (the span starts mid-CSI) and
  // must resynchronize at the duplicated frame's own boundary.
  Bytes dirty(clean.begin(), clean.begin() + kHeader + 2 * pitch);
  const auto rec1 = clean.begin() + static_cast<std::ptrdiff_t>(kHeader + pitch);
  dirty.insert(dirty.end(), rec1 + static_cast<std::ptrdiff_t>(pitch / 2),
               rec1 + static_cast<std::ptrdiff_t>(pitch));
  dirty.insert(dirty.end(), rec1, rec1 + static_cast<std::ptrdiff_t>(pitch));
  dirty.insert(dirty.end(), clean.begin() + kHeader + 2 * pitch, clean.end());

  const auto out = drain_trace(dirty);
  ASSERT_TRUE(out.header_ok);
  // All six originals plus the surviving duplicate of record 1 — nothing
  // downstream of the torn bytes was lost.
  ASSERT_EQ(out.packets.size(), 7u);
  std::vector<int> copies(6, 0);
  for (const auto& p : out.packets) {
    ++copies[static_cast<std::size_t>(std::llround(p.timestamp_s * 100.0))];
  }
  EXPECT_EQ(copies, (std::vector<int>{1, 2, 1, 1, 1, 1}));
  EXPECT_GE(out.report.resyncs, 1u);
  EXPECT_GE(out.report.records_recovered, 5u);
  EXPECT_FALSE(out.errors.empty());
}

// --- byte fault injector ---------------------------------------------------

TEST(ByteFaults, DeterministicGivenSeed) {
  Rng gen_rng(31);
  std::vector<BfeeRecord> records;
  for (std::uint32_t i = 0; i < 50; ++i) {
    records.push_back(random_record(gen_rng, i));
  }
  const Bytes clean = csitool_bytes(records);
  ByteFaultPlan plan;
  plan.bit_flip_prob = 0.2;
  plan.truncate_prob = 0.1;
  plan.garbage_prob = 0.1;
  plan.duplicate_prob = 0.1;
  plan.length_tamper_prob = 0.1;

  Rng a(42), b(42), c(43);
  ByteFaultStats stats_a;
  const Bytes da = corrupt_csitool_log(clean, plan, a, &stats_a);
  const Bytes db = corrupt_csitool_log(clean, plan, b, nullptr);
  const Bytes dc = corrupt_csitool_log(clean, plan, c, nullptr);
  EXPECT_EQ(da, db);
  EXPECT_NE(da, dc);
  EXPECT_EQ(stats_a.frames_corrupted(), stats_a.corrupted_frames.size());
  EXPECT_GT(stats_a.frames_corrupted(), 0u);
}

TEST(ByteFaults, CleanPlanIsIdentity) {
  Rng gen_rng(32);
  std::vector<BfeeRecord> records{random_record(gen_rng, 0)};
  const Bytes clean = csitool_bytes(records);
  Rng rng(1);
  ByteFaultStats stats;
  EXPECT_EQ(corrupt_csitool_log(clean, ByteFaultPlan{}, rng, &stats), clean);
  EXPECT_EQ(stats.frames_corrupted(), 0u);

  const LinkConfig link;
  std::vector<CsiPacket> packets{random_packet(link, gen_rng, 0.0)};
  const Bytes trace = trace_bytes(link, packets);
  EXPECT_EQ(corrupt_trace_log(trace, ByteFaultPlan{}, rng, &stats), trace);
}

// --- writer guards (satellite: never emit what our readers flag) -----------

TEST(WriterGuards, CsitoolRejectsNonFiniteCsi) {
  Rng rng(41);
  BfeeRecord rec = random_record(rng, 0);
  rec.csi(1, 3) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  std::ostringstream os;
  EXPECT_THROW(write_csitool_log(os, std::span<const BfeeRecord>(&rec, 1)),
               ContractViolation);
}

TEST(WriterGuards, CsitoolRejectsRssiAbsentAndZeroCsi) {
  Rng rng(42);
  BfeeRecord no_rssi = random_record(rng, 0);
  no_rssi.rssi_a = no_rssi.rssi_b = no_rssi.rssi_c = 0;
  std::ostringstream os;
  EXPECT_THROW(
      write_csitool_log(os, std::span<const BfeeRecord>(&no_rssi, 1)),
      ContractViolation);

  BfeeRecord zero_csi = random_record(rng, 0);
  for (auto& v : zero_csi.csi.flat()) v = cplx{};
  EXPECT_THROW(
      write_csitool_log(os, std::span<const BfeeRecord>(&zero_csi, 1)),
      ContractViolation);
}

TEST(WriterGuards, TraceRejectsNonFiniteAndZero) {
  const LinkConfig link;
  Rng rng(43);
  std::ostringstream os;

  CsiPacket nan_csi = random_packet(link, rng, 0.0);
  nan_csi.csi(0, 1) = cplx(0.0, std::numeric_limits<double>::infinity());
  EXPECT_THROW(write_trace(os, link, std::span<const CsiPacket>(&nan_csi, 1)),
               ContractViolation);

  CsiPacket nan_rssi = random_packet(link, rng, 0.0);
  nan_rssi.rssi_dbm = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(write_trace(os, link, std::span<const CsiPacket>(&nan_rssi, 1)),
               ContractViolation);

  CsiPacket zero = random_packet(link, rng, 0.0);
  for (auto& v : zero.csi.flat()) v = cplx{};
  EXPECT_THROW(write_trace(os, link, std::span<const CsiPacket>(&zero, 1)),
               ContractViolation);
}

TEST(WriterGuards, MakeBfeeRejectsNonFinite) {
  CMatrix csi(3, 30);
  for (auto& v : csi.flat()) v = cplx(1.0, 1.0);
  EXPECT_THROW(make_bfee(csi, std::numeric_limits<double>::quiet_NaN()),
               ContractViolation);
  csi(2, 2) = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
  EXPECT_THROW(make_bfee(csi, -50.0), ContractViolation);
}

// --- IngestReport ----------------------------------------------------------

TEST(IngestReportTest, MergeAndSummary) {
  IngestReport a;
  a.records_accepted = 10;
  a.records_recovered = 2;
  a.dropped[static_cast<std::size_t>(IngestErrorKind::kZeroCsi)] = 1;
  a.bytes_accepted = 1000;
  a.bytes_skipped = 50;
  a.resyncs = 1;

  IngestReport b;
  b.records_accepted = 5;
  b.dropped[static_cast<std::size_t>(IngestErrorKind::kRssiAbsent)] = 2;
  b.bytes_accepted = 500;
  b.frames_foreign = 3;

  a.merge(b);
  EXPECT_EQ(a.records_accepted, 15u);
  EXPECT_EQ(a.records_dropped(), 3u);
  EXPECT_EQ(a.dropped_of(IngestErrorKind::kRssiAbsent), 2u);
  EXPECT_EQ(a.bytes_consumed(), 1550u);
  EXPECT_EQ(a.frames_foreign, 3u);

  const std::string s = a.summary();
  EXPECT_NE(s.find("15 accepted"), std::string::npos);
  EXPECT_NE(s.find("zero-csi=1"), std::string::npos);
  EXPECT_NE(s.find("rssi-absent=2"), std::string::npos);
}

// --- streaming surface -----------------------------------------------------

TEST(StreamingIngest, ReplayAccumulatesReportAndBuffersPackets) {
  const LinkConfig link;
  StreamingConfig config;
  config.group_size = 1000;       // never fire a round in this test
  config.screen_packets = false;  // raw replay accounting only
  StreamingLocalizer localizer(link, config);
  const std::size_t ap0 = localizer.add_ap({});
  const std::size_t ap1 = localizer.add_ap({{5.0, 0.0}, 0.0});

  Rng gen_rng(51);
  std::vector<CsiPacket> packets;
  for (int i = 0; i < 40; ++i) {
    packets.push_back(random_packet(link, gen_rng, 0.01 * i));
  }
  const Bytes clean = trace_bytes(link, packets);
  // Tamper shape bytes rather than flipping random bits: a flip landing in
  // a stored timestamp yields a far-future packet that legitimately ages
  // every buffer out, which is not what this test is about.
  ByteFaultPlan plan;
  plan.length_tamper_prob = 0.5;
  Rng corrupt_rng(52);
  ByteFaultStats stats;
  const Bytes dirty = corrupt_trace_log(clean, plan, corrupt_rng, &stats);

  Rng rng(53);
  {
    auto is = stream_of(clean);
    TraceReader reader(is);
    const auto fixes = localizer.ingest(ap0, reader, rng);
    EXPECT_TRUE(fixes.empty());
  }
  {
    auto is = stream_of(dirty);
    TraceReader reader(is);
    (void)localizer.ingest(ap1, reader, rng);
  }

  const IngestReport& report = localizer.ingest_report();
  EXPECT_EQ(report.bytes_consumed(), clean.size() + dirty.size());
  EXPECT_EQ(localizer.buffered(ap0), 40u);
  EXPECT_EQ(localizer.buffered(ap0) + localizer.buffered(ap1),
            report.records_accepted);
  EXPECT_GT(report.records_dropped() + report.records_recovered, 0u);
}

TEST(StreamingIngest, ForeignGeometryReclassifiedAsPayloadMismatch) {
  const LinkConfig link;  // 3 antennas
  LinkConfig other = link;
  other.n_antennas = 2;

  StreamingConfig config;
  config.group_size = 1000;
  config.screen_packets = false;
  StreamingLocalizer localizer(link, config);
  const std::size_t ap0 = localizer.add_ap({});
  (void)localizer.add_ap({{5.0, 0.0}, 0.0});

  Rng gen_rng(54);
  std::vector<CsiPacket> packets;
  for (int i = 0; i < 5; ++i) {
    packets.push_back(random_packet(other, gen_rng, 0.01 * i));
  }
  const Bytes blob = trace_bytes(other, packets);

  Rng rng(55);
  auto is = stream_of(blob);
  TraceReader reader(is);
  (void)localizer.ingest(ap0, reader, rng);

  EXPECT_EQ(localizer.buffered(ap0), 0u);
  const IngestReport& report = localizer.ingest_report();
  EXPECT_EQ(report.records_accepted, 0u);
  EXPECT_EQ(report.dropped_of(IngestErrorKind::kPayloadMismatch), 5u);
}

}  // namespace
}  // namespace spotfi
