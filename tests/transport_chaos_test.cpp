// Chaos harness for the ingest transport: sweeps per-class fault grids
// and scheduled-disconnect schedules over the deterministic link, and
// asserts the reliability invariants the protocol promises —
//
//   * no acked frame is ever lost, none is delivered twice, and
//     delivery order is capture order;
//   * TransportStats partition exactly on both sides
//     (sent == acked + pending + failed, received == delivered +
//     duplicates + out_of_window + corrupt + buffered);
//   * when delivery completes, localization fixes are byte-identical to
//     the direct offer() path;
//   * all of it also holds with connections racing on real threads
//     (the TSan target of this binary).
//
// Every scenario is seeded; a failure prints the scenario and seed that
// reproduce it. CI adds a per-commit seed via SPOTFI_CHAOS_SEED.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/session_manager.hpp"
#include "testbed/deployment.hpp"
#include "testbed/experiment.hpp"
#include "transport/transport.hpp"

namespace spotfi {
namespace {

/// Payload whose timestamp encodes its identity (mark / 1000).
CsiPacket marked_packet(std::uint64_t mark) {
  CsiPacket p;
  p.csi = CMatrix(1, 4);
  for (std::size_t k = 0; k < 4; ++k) {
    p.csi(0, k) = cplx(static_cast<double>(mark), static_cast<double>(k));
  }
  p.rssi_dbm = -42.0;
  p.timestamp_s = 1e-3 * static_cast<double>(mark);
  return p;
}

std::uint64_t mark_of(const CsiPacket& p) {
  return static_cast<std::uint64_t>(std::llround(p.timestamp_s * 1000.0));
}

struct ChaosOutcome {
  bool completed = false;  ///< quiesced before the horizon
  TransportStats tx;
  TransportStats rx;
  LinkStats link;
  std::vector<std::uint64_t> delivered_marks;  ///< sink arrival order
};

/// Feeds `n_frames` marked frames through one connection over `model`
/// and runs the protocol until both endpoints quiesce.
ChaosOutcome run_chaos(const LinkFaultModel& model, std::uint64_t seed,
                       std::size_t n_frames) {
  LinkSimulator link(model, seed);
  TransportConfig cfg;
  cfg.seed = seed ^ 0x9e3779b97f4a7c15ULL;
  cfg.rto_initial_s = 0.1;
  cfg.heartbeat_interval_s = 0.25;
  cfg.liveness_timeout_s = 1.0;
  ChaosOutcome out;
  TransportSender sender(link, cfg);
  TransportReceiver receiver(
      link,
      [&out](std::size_t /*ap_id*/, CsiPacket& p) {
        out.delivered_marks.push_back(mark_of(p));
        p = CsiPacket{};
        return true;
      },
      cfg);

  std::uint64_t next = 1;
  const double dt = 0.005;
  for (double t = 0.0; t < 180.0; t += dt) {
    if (next <= n_frames) {
      CsiPacket p = marked_packet(next);
      // Window-full refusals simply retry next step — backpressure.
      if (sender.send(0, p, t).has_value()) ++next;
    }
    sender.tick(t);
    receiver.tick(t);
    if (next > n_frames && sender.quiescent() && receiver.quiescent()) {
      out.completed = true;
      break;
    }
  }
  out.tx = sender.stats();
  out.rx = receiver.stats();
  out.link = link.stats();
  return out;
}

/// The invariants every completed chaos run must satisfy.
void check_outcome(const ChaosOutcome& out, std::size_t n_frames) {
  ASSERT_TRUE(out.completed) << "transport failed to quiesce";
  // Exactly once, in order: the delivered marks are exactly 1..n.
  ASSERT_EQ(out.delivered_marks.size(), n_frames);
  for (std::uint64_t m = 1; m <= n_frames; ++m) {
    ASSERT_EQ(out.delivered_marks[m - 1], m) << "delivery order broken";
  }
  // Sender partition: everything accepted was acked, nothing hangs.
  EXPECT_EQ(out.tx.sent, n_frames);
  EXPECT_EQ(out.tx.acked, n_frames);
  EXPECT_EQ(out.tx.pending, 0u);
  EXPECT_EQ(out.tx.failed, 0u);
  EXPECT_EQ(out.tx.sent, out.tx.acked + out.tx.pending + out.tx.failed);
  // Receiver partition: every arrival classified exactly once.
  EXPECT_EQ(out.rx.delivered, n_frames);
  EXPECT_EQ(out.rx.buffered, 0u);
  EXPECT_EQ(out.rx.received, out.rx.delivered + out.rx.duplicates +
                                 out.rx.out_of_window + out.rx.corrupt +
                                 out.rx.buffered);
}

const std::uint64_t kSeeds[] = {1, 2, 3};

TEST(TransportChaos, PerClassFaultGridsDeliverExactlyOnce) {
  struct Scenario {
    std::string name;
    LinkFaultModel model;
  };
  std::vector<Scenario> scenarios;
  for (const double p : {0.02, 0.10}) {
    LinkFaultModel m;
    m.delay_s = 0.01;
    m.jitter_s = 0.02;
    m.drop_prob = p;
    scenarios.push_back({"drop@" + std::to_string(p), m});
    m.drop_prob = 0.0;
    m.duplicate_prob = p;
    scenarios.push_back({"duplicate@" + std::to_string(p), m});
    m.duplicate_prob = 0.0;
    m.reorder_prob = p;
    m.reorder_extra_s = 0.08;
    scenarios.push_back({"reorder@" + std::to_string(p), m});
    m.reorder_prob = 0.0;
    m.corrupt_prob = p;
    scenarios.push_back({"corrupt@" + std::to_string(p), m});
  }
  {
    LinkFaultModel m;  // every class at once, at the 10% ceiling
    m.delay_s = 0.02;
    m.jitter_s = 0.05;
    m.drop_prob = 0.10;
    m.duplicate_prob = 0.10;
    m.reorder_prob = 0.10;
    m.reorder_extra_s = 0.10;
    m.corrupt_prob = 0.10;
    scenarios.push_back({"all@0.10", m});
  }

  for (const std::uint64_t seed : kSeeds) {
    for (const Scenario& s : scenarios) {
      SCOPED_TRACE("scenario=" + s.name + " seed=" + std::to_string(seed));
      check_outcome(run_chaos(s.model, seed, 100), 100);
    }
  }
}

TEST(TransportChaos, DisconnectSchedulesSurviveWithExactlyOnceDelivery) {
  LinkFaultModel m;
  m.delay_s = 0.01;
  m.jitter_s = 0.03;
  m.drop_prob = 0.05;
  m.duplicate_prob = 0.05;
  // The first outage starts mid-transfer and outlasts the liveness
  // timeout, forcing a real reconnect; the later ones exercise
  // retransmission through shorter blackouts.
  m.down_windows = {{0.2, 1.5}, {2.5, 2.9}, {4.0, 4.3}};
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const ChaosOutcome out = run_chaos(m, seed, 100);
    check_outcome(out, 100);
    // The outages actually bit: the sender reconnected at least once
    // and the link blackholed real traffic.
    EXPECT_GE(out.tx.reconnects, 1u);
    EXPECT_GE(out.link.disconnect_dropped, 1u);
  }
}

// The per-commit seed from CI (SPOTFI_CHAOS_SEED), printed so a red run
// can be replayed locally with the exact same scenario.
TEST(TransportChaos, CommitSeedSweepDeliversExactlyOnce) {
  std::uint64_t seed = 20260809;
  if (const char* env = std::getenv("SPOTFI_CHAOS_SEED")) {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::cout << "[chaos] SPOTFI_CHAOS_SEED=" << seed << std::endl;
  LinkFaultModel m;
  m.delay_s = 0.02;
  m.jitter_s = 0.05;
  m.drop_prob = 0.10;
  m.duplicate_prob = 0.10;
  m.reorder_prob = 0.10;
  m.reorder_extra_s = 0.10;
  m.corrupt_prob = 0.10;
  m.down_windows = {{1.5, 2.1}, {4.0, 4.4}};
  SCOPED_TRACE("seed=" + std::to_string(seed));
  check_outcome(run_chaos(m, seed, 100), 100);
}

// --- fixes byte-identical to the direct offer() path -----------------------

TEST(TransportChaos, CompletedDeliveryYieldsByteIdenticalFixes) {
  const LinkConfig kLink = LinkConfig::intel5300_40mhz();
  constexpr std::size_t kGroup = 4;
  ExperimentConfig ecfg;
  ecfg.packets_per_group = kGroup;
  ExperimentRunner runner(kLink, office_deployment(), ecfg);
  Rng capture_rng(11);
  const auto captures = runner.simulate_captures({6.0, 3.5}, capture_rng);

  SessionConfig scfg;
  scfg.streaming.group_size = kGroup;
  scfg.streaming.server.localizer.area_min = runner.deployment().area_min;
  scfg.streaming.server.localizer.area_max = runner.deployment().area_max;
  for (const auto& c : captures) scfg.aps.push_back(c.pose);
  scfg.seed = 77;
  // Deep queue + pump-per-tick keeps occupancy far below every degrade
  // rung, so both paths plan all rounds at full fidelity.
  scfg.overload.queue_capacity = 512;

  // Reference: the direct offer() path.
  std::vector<LocationFix> direct;
  {
    SessionManagerConfig mgr_cfg;
    mgr_cfg.num_threads = 1;
    SessionManager manager(kLink, mgr_cfg);
    const SessionId id = manager.open_session(scfg);
    for (std::size_t p = 0; p < kGroup; ++p) {
      for (std::size_t a = 0; a < captures.size(); ++a) {
        ASSERT_TRUE(manager.offer(id, a, captures[a].packets[p]).admitted());
        for (auto& fix : manager.pump(id)) direct.push_back(std::move(fix));
      }
    }
    ASSERT_EQ(direct.size(), 1u);
  }

  // Same stream, but multiplexed over ONE lossy transport connection
  // (both APs share the sequence space, so reliable in-order delivery
  // preserves the exact total offer order the reference saw).
  LinkFaultModel model;
  model.delay_s = 0.01;
  model.jitter_s = 0.02;
  model.drop_prob = 0.05;
  model.duplicate_prob = 0.05;
  model.reorder_prob = 0.05;
  model.reorder_extra_s = 0.05;
  model.corrupt_prob = 0.05;
  model.down_windows = {{0.8, 1.3}};
  LinkSimulator link(model, /*seed=*/5);
  TransportConfig tcfg;
  tcfg.seed = 55;
  tcfg.rto_initial_s = 0.1;
  tcfg.liveness_timeout_s = 1.0;
  tcfg.heartbeat_interval_s = 0.25;

  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(scfg);
  TransportSender sender(link, tcfg);
  TransportReceiver receiver(link, make_session_sink(manager, id), tcfg);

  std::vector<LocationFix> fixes;
  std::size_t p = 0;
  std::size_t a = 0;
  bool fed_all = false;
  bool completed = false;
  const double dt = 0.005;
  for (double t = 0.0; t < 120.0; t += dt) {
    if (!fed_all) {
      CsiPacket packet = captures[a].packets[p];
      if (sender.send(a, packet, t).has_value()) {
        if (++a == captures.size()) {
          a = 0;
          fed_all = ++p == kGroup;
        }
      }
    }
    sender.tick(t);
    receiver.tick(t);
    for (auto& fix : manager.pump(id)) fixes.push_back(std::move(fix));
    if (fed_all && sender.quiescent() && receiver.quiescent()) {
      completed = true;
      break;
    }
  }
  ASSERT_TRUE(completed);

  // Byte-identical localization: the lossy wire changed *when* packets
  // arrived, never *what* the estimator computed.
  ASSERT_EQ(fixes.size(), direct.size());
  for (std::size_t i = 0; i < fixes.size(); ++i) {
    EXPECT_EQ(fixes[i].raw.x, direct[i].raw.x);
    EXPECT_EQ(fixes[i].raw.y, direct[i].raw.y);
    EXPECT_EQ(fixes[i].tracked.x, direct[i].tracked.x);
    EXPECT_EQ(fixes[i].tracked.y, direct[i].tracked.y);
  }

  // The cross-layer report ties the two stats layers together:
  // transport delivered == session accepted, deferrals == sheds, and
  // both partitions hold.
  const SessionIngestStats report =
      session_ingest_report(manager, id, {&sender}, {&receiver});
  const std::size_t n_offered = kGroup * captures.size();
  EXPECT_EQ(report.transport.delivered, n_offered);
  EXPECT_EQ(report.session.accepted, report.transport.delivered);
  EXPECT_EQ(report.session.shed_packets,
            report.transport.backpressure_deferrals);
  EXPECT_EQ(report.session.offered,
            report.session.accepted + report.session.shed_packets);
  EXPECT_EQ(report.transport.sent, n_offered);
  EXPECT_EQ(report.transport.sent, report.transport.acked +
                                       report.transport.pending +
                                       report.transport.failed);
  EXPECT_EQ(report.transport.pending, 0u);
  EXPECT_EQ(report.transport.failed, 0u);
}

// --- racing connections on real threads (the TSan target) ------------------

TEST(TransportChaos, RacingConnectionsKeepInvariantsUnderThreads) {
  constexpr std::size_t kConnections = 2;
  constexpr std::uint64_t kFrames = 300;

  LinkFaultModel model;
  model.delay_s = 0.002;
  model.jitter_s = 0.004;
  model.drop_prob = 0.05;
  model.duplicate_prob = 0.05;
  model.corrupt_prob = 0.05;

  struct Connection {
    std::unique_ptr<LinkSimulator> link;
    std::unique_ptr<TransportSender> sender;
    std::unique_ptr<TransportReceiver> receiver;
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> last_mark{0};
    std::atomic<bool> order_ok{true};
    std::atomic<bool> stop{false};
  };
  Connection conns[kConnections];
  TransportConfig cfg;
  cfg.rto_initial_s = 0.05;
  cfg.heartbeat_interval_s = 0.2;
  cfg.liveness_timeout_s = 5.0;  // sender/receiver clocks drift freely
  for (std::size_t c = 0; c < kConnections; ++c) {
    cfg.seed = 100 + c;
    conns[c].link = std::make_unique<LinkSimulator>(model, 10 + c);
    conns[c].sender = std::make_unique<TransportSender>(*conns[c].link, cfg);
    Connection* conn = &conns[c];
    conns[c].receiver = std::make_unique<TransportReceiver>(
        *conns[c].link,
        [conn](std::size_t /*ap_id*/, CsiPacket& p) {
          const std::uint64_t mark = mark_of(p);
          // In-order exactly-once, checked from the consumer thread.
          if (mark != conn->last_mark.load(std::memory_order_relaxed) + 1) {
            conn->order_ok.store(false, std::memory_order_relaxed);
          }
          conn->last_mark.store(mark, std::memory_order_relaxed);
          conn->delivered.fetch_add(1, std::memory_order_relaxed);
          p = CsiPacket{};
          return true;
        },
        cfg);
  }

  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < kConnections; ++c) {
    Connection* conn = &conns[c];
    // Producer: one thread per connection drives send + sender.tick.
    threads.emplace_back([conn] {
      std::uint64_t next = 1;
      double t = 0.0;
      while (!conn->stop.load(std::memory_order_relaxed)) {
        if (next <= kFrames) {
          CsiPacket p = marked_packet(next);
          if (conn->sender->send(0, p, t).has_value()) ++next;
        }
        conn->sender->tick(t);
        t += 0.002;
        std::this_thread::yield();
      }
    });
    // Consumer: one thread per connection drives receiver.tick.
    threads.emplace_back([conn] {
      double t = 0.0;
      while (!conn->stop.load(std::memory_order_relaxed)) {
        conn->receiver->tick(t);
        t += 0.002;
        std::this_thread::yield();
      }
    });
  }

  // Wait (bounded) for every connection to finish delivering.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  bool all_done = false;
  while (!all_done && std::chrono::steady_clock::now() < deadline) {
    all_done = true;
    for (auto& conn : conns) {
      all_done = all_done &&
                 conn.delivered.load(std::memory_order_relaxed) >= kFrames;
    }
    std::this_thread::yield();
  }
  for (auto& conn : conns) conn.stop.store(true, std::memory_order_relaxed);
  for (auto& th : threads) th.join();

  for (std::size_t c = 0; c < kConnections; ++c) {
    SCOPED_TRACE("connection=" + std::to_string(c));
    ASSERT_TRUE(all_done) << "delivery did not complete in 60s";
    EXPECT_TRUE(conns[c].order_ok.load());
    EXPECT_EQ(conns[c].delivered.load(), kFrames);
    // Quiesced threads → stats are safe to read and must partition.
    const TransportStats tx = conns[c].sender->stats();
    const TransportStats rx = conns[c].receiver->stats();
    EXPECT_EQ(tx.sent, kFrames);
    EXPECT_EQ(tx.sent, tx.acked + tx.pending + tx.failed);
    EXPECT_EQ(tx.failed, 0u);
    EXPECT_EQ(rx.delivered, kFrames);
    EXPECT_EQ(rx.received, rx.delivered + rx.duplicates + rx.out_of_window +
                               rx.corrupt + rx.buffered);
  }
}

}  // namespace
}  // namespace spotfi
