// Property-style parameterized sweeps across the stack: invariances
// (sanitization vs STO, likelihood vs ToF origin), monotonicities (error
// vs SNR), and closed-form identities checked over parameter grids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <thread>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "common/rng.hpp"
#include "common/spsc_queue.hpp"
#include "csi/sanitize.hpp"
#include "localize/spotfi_localizer.hpp"
#include "music/estimators.hpp"
#include "music/steering.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

PathComponent path_at(double aoa_deg, double tof_ns, double gain_db = 0.0) {
  PathComponent p;
  p.aoa_rad = deg_to_rad(aoa_deg);
  p.tof_s = tof_ns * 1e-9;
  p.gain_db = gain_db;
  p.is_direct = true;
  return p;
}

// --- sanitization is invariant to the STO, over a sweep of STOs ---

class SanitizeStoSweep : public ::testing::TestWithParam<double> {};

TEST_P(SanitizeStoSweep, SanitizedCsiIndependentOfSto) {
  const double sto_ns = GetParam();
  auto make = [&](double sto) {
    ImpairmentConfig imp;
    imp.sto_base_s = sto;
    imp.sto_jitter_s = 0.0;
    imp.random_common_phase = false;
    imp.quantize_8bit = false;
    imp.noise_floor_dbm = -300.0;
    imp.max_snr_db = 200.0;
    imp.indirect_phase_jitter_rad = 0.0;
    imp.indirect_gain_jitter_db = 0.0;
    imp.indirect_tof_jitter_s = 0.0;
    imp.indirect_aoa_jitter_rad = 0.0;
    const CsiSynthesizer synth(kLink, imp);
    const std::vector<PathComponent> paths{path_at(20.0, 30.0),
                                           path_at(-35.0, 75.0, -6.0)};
    Rng rng(1);
    return sanitize_tof(synth.synthesize(paths, 0.0, rng).csi, kLink).csi;
  };
  const CMatrix reference = make(0.0);
  const CMatrix shifted = make(sto_ns * 1e-9);
  EXPECT_LT((reference - shifted).max_abs(), 1e-6 * reference.max_abs())
      << "STO " << sto_ns << " ns";
}

INSTANTIATE_TEST_SUITE_P(StoSweep, SanitizeStoSweep,
                         ::testing::Values(-120.0, -40.0, 15.0, 60.0, 150.0,
                                           320.0));

// --- estimation error shrinks with SNR ---

TEST(SnrMonotonicity, AoaErrorShrinksWithSnr) {
  auto median_error_at = [&](double snr_db) {
    ImpairmentConfig imp;
    imp.sto_jitter_s = 0.0;
    imp.random_common_phase = false;
    imp.quantize_8bit = false;
    imp.max_snr_db = 200.0;
    imp.noise_floor_dbm = -92.0;
    // Choose path gain so rx power gives the requested SNR.
    PathComponent p = path_at(25.0, 60.0);
    p.gain_db = -92.0 + snr_db - imp.tx_power_dbm;
    const CsiSynthesizer synth(kLink, imp);
    const JointMusicEstimator estimator(kLink);
    std::vector<double> errors;
    Rng rng(42);
    for (int trial = 0; trial < 12; ++trial) {
      const auto packet =
          synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
      const auto estimates = estimator.estimate(packet.csi);
      double best = 90.0;
      for (const auto& e : estimates) {
        best = std::min(best, std::abs(rad_to_deg(e.aoa_rad) - 25.0));
      }
      errors.push_back(best);
    }
    std::sort(errors.begin(), errors.end());
    return errors[errors.size() / 2];
  };
  const double at5 = median_error_at(5.0);
  const double at15 = median_error_at(15.0);
  const double at30 = median_error_at(30.0);
  EXPECT_LE(at30, at15 + 0.25);
  EXPECT_LE(at15, at5 + 0.25);
  EXPECT_LT(at30, 1.0);
}

// --- steering vector identities over a parameter grid ---

struct SteeringCase {
  double aoa_deg;
  double tof_ns;
};

class SteeringSweep : public ::testing::TestWithParam<SteeringCase> {};

TEST_P(SteeringSweep, UnitModulusAndConjugateSymmetry) {
  const auto [aoa_deg, tof_ns] = GetParam();
  const CVector a =
      joint_steering(deg_to_rad(aoa_deg), tof_ns * 1e-9, 2, 15, kLink);
  for (const auto& v : a) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
  // ||a||^2 = number of virtual sensors.
  double norm_sq = 0.0;
  for (const auto& v : a) norm_sq += std::norm(v);
  EXPECT_NEAR(norm_sq, 30.0, 1e-9);
  // Negating the AoA conjugates the antenna factor.
  const CVector neg =
      joint_steering(deg_to_rad(-aoa_deg), tof_ns * 1e-9, 2, 15, kLink);
  for (std::size_t s = 0; s < 15; ++s) {
    // Same subcarrier, antenna 1: ant factor Phi vs conj(Phi).
    EXPECT_NEAR(std::abs(neg[15 + s] - std::conj(a[15 + s] / a[s]) * a[s]),
                0.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SteeringSweep,
    ::testing::Values(SteeringCase{0.0, 0.0}, SteeringCase{15.0, 40.0},
                      SteeringCase{45.0, 120.0}, SteeringCase{75.0, 300.0},
                      SteeringCase{89.0, 700.0}));

// --- MUSIC spectrum peaks exactly at the true parameters (noiseless) ---

class SpectrumPeakSweep : public ::testing::TestWithParam<SteeringCase> {};

TEST_P(SpectrumPeakSweep, GlobalMaximumAtTruth) {
  const auto [aoa_deg, tof_ns] = GetParam();
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = false;
  imp.noise_floor_dbm = -300.0;
  const CsiSynthesizer synth(kLink, imp);
  const auto p = path_at(aoa_deg, tof_ns);
  const CMatrix csi = synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  const JointMusicEstimator estimator(kLink);
  const AoaTofSpectrum sp = estimator.spectrum(csi);

  std::size_t best_i = 0, best_j = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < sp.values.rows(); ++i) {
    for (std::size_t j = 0; j < sp.values.cols(); ++j) {
      if (sp.values(i, j) > best) {
        best = sp.values(i, j);
        best_i = i;
        best_j = j;
      }
    }
  }
  EXPECT_NEAR(rad_to_deg(sp.aoa_grid_rad[best_i]), aoa_deg, 1.0);
  EXPECT_NEAR(sp.tof_grid_s[best_j] * 1e9, tof_ns, 2.6);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SpectrumPeakSweep,
    ::testing::Values(SteeringCase{-70.0, 25.0}, SteeringCase{-30.0, 95.0},
                      SteeringCase{0.0, 180.0}, SteeringCase{40.0, 270.0},
                      SteeringCase{70.0, 350.0}));

// --- localizer solves exactly for exact inputs, across geometries ---

class LocalizerGeometrySweep : public ::testing::TestWithParam<Vec2> {};

TEST_P(LocalizerGeometrySweep, ExactRecovery) {
  const Vec2 truth = GetParam();
  PathLossModel model;
  model.p0_dbm = -40.0;
  model.exponent = 2.3;
  std::vector<ApObservation> obs;
  const Vec2 center{8.0, 5.0};
  for (const Vec2 pos : {Vec2{1.0, 1.0}, Vec2{15.0, 1.0}, Vec2{15.0, 9.0},
                         Vec2{1.0, 9.0}, Vec2{8.0, 0.5}}) {
    ApObservation o;
    o.pose = ArrayPose{pos, (center - pos).angle()};
    o.direct_aoa_rad = o.pose.apparent_aoa_of(truth);
    o.rssi_dbm = model.rssi_dbm(distance(pos, truth));
    o.likelihood = 2.0;
    obs.push_back(o);
  }
  LocalizerConfig cfg;
  cfg.area_max = {16.0, 10.0};
  const SpotFiLocalizer localizer(cfg);
  const LocationEstimate est = localizer.locate(obs);
  EXPECT_LT(distance(est.position, truth), 0.1)
      << "target (" << truth.x << ", " << truth.y << ")";
}

INSTANTIATE_TEST_SUITE_P(Grid, LocalizerGeometrySweep,
                         ::testing::Values(Vec2{3.0, 3.0}, Vec2{8.0, 5.0},
                                           Vec2{13.0, 7.0}, Vec2{2.0, 8.0},
                                           Vec2{14.0, 2.0}, Vec2{6.5, 9.0}));

// --- path loss model identities over exponents ---

class PathLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(PathLossSweep, InverseAndSlope) {
  const double exponent = GetParam();
  PathLossModel model;
  model.p0_dbm = -41.0;
  model.exponent = exponent;
  for (const double d : {0.5, 2.0, 7.0, 25.0}) {
    EXPECT_NEAR(model.distance_m(model.rssi_dbm(d)), d, 1e-9);
  }
  // Doubling the distance costs 10*n*log10(2) dB.
  EXPECT_NEAR(model.rssi_dbm(4.0) - model.rssi_dbm(8.0),
              10.0 * exponent * std::log10(2.0), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Exponents, PathLossSweep,
                         ::testing::Values(1.6, 2.0, 2.5, 3.0, 4.0));

// --- quantization noise is bounded over signal levels ---

class QuantizationSweep : public ::testing::TestWithParam<double> {};

TEST_P(QuantizationSweep, RelativeErrorBounded) {
  const double gain_db = GetParam();
  ImpairmentConfig imp;
  imp.sto_base_s = 0.0;
  imp.sto_jitter_s = 0.0;
  imp.random_common_phase = false;
  imp.quantize_8bit = true;
  imp.noise_floor_dbm = -300.0;
  imp.max_snr_db = 200.0;
  imp.indirect_phase_jitter_rad = 0.0;
  imp.indirect_gain_jitter_db = 0.0;
  imp.indirect_tof_jitter_s = 0.0;
  imp.indirect_aoa_jitter_rad = 0.0;
  const CsiSynthesizer synth(kLink, imp);
  const auto p = path_at(10.0, 50.0, gain_db);
  Rng rng(3);
  const auto packet =
      synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
  const CMatrix ideal =
      synth.ideal_csi(std::span<const PathComponent>(&p, 1));
  // AGC makes quantization error relative, independent of signal level.
  EXPECT_LT((packet.csi - ideal).max_abs(), 0.02 * ideal.max_abs());
}

INSTANTIATE_TEST_SUITE_P(Levels, QuantizationSweep,
                         ::testing::Values(-20.0, -40.0, -60.0, -80.0));

// --- SpscQueue: FIFO across many ring laps, monotone high-water ---
//
// The ring's cursors are *indices*, bounded in [0, slots_.size()) by
// next_index — they wrap with the ring, not with std::size_t, so integer
// overflow is impossible by construction. What CAN go wrong is the ring
// wrap itself (head/tail lapping the storage, the full-vs-empty
// distinction at next(tail) == head) and the producer-side high-water
// bookkeeping. These sweeps hammer exactly those.

class SpscWrapSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpscWrapSweep, FifoSurvivesThousandsOfRingLaps) {
  const std::size_t capacity = GetParam();
  SpscQueue<std::uint64_t> queue(capacity);
  Rng rng(1234 + capacity);
  std::uint64_t next_push = 0;
  std::uint64_t next_pop = 0;
  std::size_t occupancy = 0;  // shadow model of the queue depth
  constexpr std::size_t kOps = 100'000;
  for (std::size_t op = 0; op < kOps; ++op) {
    if (rng.uniform() < 0.55) {
      const bool pushed = queue.try_push(std::uint64_t{next_push});
      // Full and empty must match the shadow model exactly.
      ASSERT_EQ(pushed, occupancy < capacity);
      if (pushed) {
        ++next_push;
        ++occupancy;
      }
    } else {
      const auto popped = queue.try_pop();
      ASSERT_EQ(popped.has_value(), occupancy > 0);
      if (popped) {
        // FIFO: values come back in exactly the order they went in,
        // however many times the ring has lapped its storage.
        ASSERT_EQ(*popped, next_pop);
        ++next_pop;
        --occupancy;
      }
    }
    ASSERT_EQ(queue.size(), occupancy);
    ASSERT_LE(queue.high_water(), capacity);
  }
  // With ~55k pushes through a <=7-slot ring, the cursors lapped the
  // storage thousands of times.
  EXPECT_GT(next_pop, 10 * capacity);
  EXPECT_LE(queue.high_water(), capacity);
}

INSTANTIATE_TEST_SUITE_P(Capacities, SpscWrapSweep,
                         ::testing::Values(1, 2, 3, 7));

TEST(SpscQueueProperty, RacingProducerConsumerKeepsFifoAndMonotoneHighWater) {
  constexpr std::size_t kCapacity = 8;
  constexpr std::uint64_t kItems = 50'000;
  SpscQueue<std::uint64_t> queue(kCapacity);

  std::thread producer([&] {
    for (std::uint64_t v = 0; v < kItems;) {
      if (queue.try_push(std::uint64_t{v})) {
        ++v;
      } else {
        std::this_thread::yield();  // full: let the consumer catch up
      }
    }
  });

  // Consumer on this thread: FIFO means the popped sequence is exactly
  // 0..kItems-1 even while the producer races.
  std::uint64_t expected = 0;
  std::size_t sampled_high_water = 0;
  while (expected < kItems) {
    if (const auto popped = queue.try_pop()) {
      ASSERT_EQ(*popped, expected);
      ++expected;
    } else {
      std::this_thread::yield();
    }
    if ((expected & 0x3ff) == 0) {
      // high_water is monotone and bounded even when read mid-flight
      // from a thread that is neither producer nor consumer-only.
      const std::size_t hw = queue.high_water();
      ASSERT_GE(hw, sampled_high_water);
      ASSERT_LE(hw, kCapacity);
      sampled_high_water = hw;
    }
  }
  producer.join();
  EXPECT_TRUE(queue.empty());
  EXPECT_LE(queue.high_water(), kCapacity);
  EXPECT_GE(queue.high_water(), 1u);
}

}  // namespace
}  // namespace spotfi
