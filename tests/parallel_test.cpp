// Tests for the concurrency substrate (common/parallel) and the
// determinism contract of the parallel localization engine: a round run
// with 1 thread and with N threads must produce identical estimates,
// notes, and numerics digests, because per-task Rng streams are forked
// before dispatch and all results are folded in index order.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/parallel.hpp"
#include "core/server.hpp"
#include "testbed/deployment.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

// --- thread-count resolution ---

TEST(ResolveThreads, ZeroMapsToHardwareConcurrency) {
  unsetenv("SPOTFI_THREADS");
  const std::size_t resolved = ThreadPool::resolve_threads(0);
  EXPECT_GE(resolved, 1u);
  const unsigned hw = std::thread::hardware_concurrency();
  if (hw > 0) {
    EXPECT_EQ(resolved, hw);
  }
}

TEST(ResolveThreads, ExplicitCountPassesThrough) {
  unsetenv("SPOTFI_THREADS");
  EXPECT_EQ(ThreadPool::resolve_threads(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(7), 7u);
}

TEST(ResolveThreads, EnvOverrideWins) {
  setenv("SPOTFI_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::resolve_threads(1), 3u);
  EXPECT_EQ(ThreadPool::resolve_threads(0), 3u);
  setenv("SPOTFI_THREADS", "0", 1);
  EXPECT_GE(ThreadPool::resolve_threads(5), 1u);  // 0 -> hardware
  unsetenv("SPOTFI_THREADS");
}

TEST(ResolveThreads, MalformedEnvValuesThrowInsteadOfBeingIgnored) {
  // An operator typo must fail at startup, not silently fall back to the
  // configured count. One case per distinct failure shape.
  const char* bad[] = {
      "",                      // empty string
      "not-a-number",          // pure garbage
      "3x",                    // trailing junk after valid digits
      "x3",                    // leading junk
      "-1",                    // negative (strtoull would wrap it)
      "+4",                    // explicit sign is not "plain digits"
      " 4",                    // leading whitespace
      "4 ",                    // trailing whitespace
      "0x10",                  // hex is not base-10
      "3.5",                   // fractional
  };
  for (const char* value : bad) {
    setenv("SPOTFI_THREADS", value, 1);
    EXPECT_THROW((void)ThreadPool::resolve_threads(5), ContractViolation)
        << "value: \"" << value << '"';
  }
  unsetenv("SPOTFI_THREADS");
}

TEST(ResolveThreads, OutOfRangeEnvValuesThrow) {
  // Above the sanity cap but representable.
  setenv("SPOTFI_THREADS",
         std::to_string(ThreadPool::kMaxEnvThreads + 1).c_str(), 1);
  EXPECT_THROW((void)ThreadPool::resolve_threads(1), ContractViolation);
  // Overflows unsigned long long entirely (ERANGE path).
  setenv("SPOTFI_THREADS", "99999999999999999999999999", 1);
  EXPECT_THROW((void)ThreadPool::resolve_threads(1), ContractViolation);
  // The cap itself is accepted.
  setenv("SPOTFI_THREADS",
         std::to_string(ThreadPool::kMaxEnvThreads).c_str(), 1);
  EXPECT_EQ(ThreadPool::resolve_threads(1), ThreadPool::kMaxEnvThreads);
  unsetenv("SPOTFI_THREADS");
}

// --- ThreadPool mechanics ---

TEST(ThreadPool, SingleLanePoolSpawnsNoWorkersAndRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, EveryIndexRunsExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kN = 250;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, ZeroAndOneTaskDegenerateCases) {
  ThreadPool pool(4);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
  int calls = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPool, ParallelMapPreservesIndexOrder) {
  ThreadPool pool(4);
  const auto out =
      pool.parallel_map(100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ThreadPool, LowestIndexExceptionWinsAndAllIndicesStillRun) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::vector<std::atomic<int>> hits(kN);
  try {
    pool.parallel_for(kN, [&](std::size_t i) {
      hits[i].fetch_add(1);
      if (i == 10 || i == 40) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected the exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 10");
  }
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ThreadPool, NestedSubmitRunsInlineOnTheWorker) {
  ThreadPool pool(4);
  std::atomic<int> inner_total{0};
  std::atomic<int> outer_on_worker{0};
  std::atomic<int> nested_inline{0};
  pool.parallel_for(8, [&](std::size_t) {
    const auto outer_thread = std::this_thread::get_id();
    const bool on_worker = ThreadPool::on_worker_thread();
    if (on_worker) outer_on_worker.fetch_add(1);
    pool.parallel_for(5, [&](std::size_t) {
      inner_total.fetch_add(1);
      if (on_worker && std::this_thread::get_id() == outer_thread) {
        nested_inline.fetch_add(1);
      }
    });
  });
  EXPECT_EQ(inner_total.load(), 8 * 5);
  // Every inner iteration dispatched from a worker must run inline on
  // that same worker — never re-queued. (How many outer iterations land
  // on workers vs the participating caller is scheduler-dependent; on a
  // single-core machine the caller may claim all of them, so the exact
  // split is asserted rather than a worker share.)
  EXPECT_EQ(nested_inline.load(), outer_on_worker.load() * 5);
}

TEST(ThreadPool, SurvivesManySmallBatches) {
  ThreadPool pool(3);
  std::size_t total = 0;
  for (int round = 0; round < 200; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.parallel_for(7, [&](std::size_t i) { sum.fetch_add(i + 1); });
    total += sum.load();
  }
  EXPECT_EQ(total, 200u * (7u * 8u / 2u));
}

// --- shutdown contract ---

TEST(ThreadPoolShutdown, IdempotentAndSubmitAfterShutdownRunsInline) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  pool.shutdown();
  pool.shutdown();  // second call must be a no-op, not a crash
  EXPECT_EQ(pool.size(), 1u);

  // Submit-after-shutdown: well-defined, correct, and inline-serial.
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(16);
  pool.parallel_for(16, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);

  const auto out = pool.parallel_map(8, [](std::size_t i) { return 2 * i; });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], 2 * i);
}

TEST(ThreadPoolShutdown, ShutdownWithTasksStillQueuedLosesNoIndex) {
  // Destroy/shutdown racing an in-flight batch: the dispatching thread
  // must still see every index run exactly once — workers that observe
  // the stop flag abandon the queue and the caller finishes inline.
  for (int round = 0; round < 20; ++round) {
    ThreadPool pool(4);
    constexpr std::size_t kN = 64;
    std::vector<std::atomic<int>> hits(kN);
    std::atomic<bool> started{false};
    std::thread submitter([&] {
      pool.parallel_for(kN, [&](std::size_t i) {
        started.store(true);
        // Slow tasks keep the batch alive across the shutdown call.
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        hits[i].fetch_add(1);
      });
    });
    while (!started.load()) std::this_thread::yield();
    pool.shutdown();
    submitter.join();
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolShutdown, DestroyAfterMidBatchShutdownIsClean) {
  // The documented teardown order for a pool with work in flight on
  // another thread: shutdown() (safe concurrently), join the
  // dispatching thread (its parallel_for drains the batch inline), then
  // destroy. The destructor re-runs shutdown on an already-stopped pool
  // — the idempotent path — and must neither hang nor double-join.
  constexpr std::size_t kN = 48;
  std::vector<std::atomic<int>> hits(kN);
  std::atomic<bool> started{false};
  {
    ThreadPool pool(4);
    std::thread submitter([&] {
      pool.parallel_for(kN, [&](std::size_t i) {
        started.store(true);
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        hits[i].fetch_add(1);
      });
    });
    while (!started.load()) std::this_thread::yield();
    pool.shutdown();
    submitter.join();
  }  // ~ThreadPool after an explicit mid-batch shutdown
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1);
}

// --- pipeline determinism: 1 thread vs 4 threads, same seed ---

struct RoundPair {
  LocalizationRound serial;
  LocalizationRound parallel;
};

RoundPair run_round_both_ways(bool robust, bool poison_one_ap) {
  unsetenv("SPOTFI_THREADS");
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig exp_cfg;
  exp_cfg.packets_per_group = 6;
  const ExperimentRunner runner(link, office_deployment(), exp_cfg);
  Rng capture_rng(2024);
  auto captures = runner.simulate_captures({6.0, 3.5}, capture_rng);
  if (poison_one_ap) captures[2].packets.clear();

  RoundPair pair;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ServerConfig cfg;
    cfg.num_threads = threads;
    cfg.localizer.area_min = runner.deployment().area_min;
    cfg.localizer.area_max = runner.deployment().area_max;
    const SpotFiServer server(link, cfg);
    EXPECT_EQ(server.num_threads(), threads);
    Rng rng(99);
    LocalizationRound round;
    if (robust) {
      auto result = server.try_localize(captures, rng);
      if (!result.has_value()) {
        ADD_FAILURE() << result.error().reason;
        return pair;
      }
      round = std::move(result.value());
    } else {
      round = server.localize(captures, rng);
    }
    (threads == 1 ? pair.serial : pair.parallel) = std::move(round);
  }
  return pair;
}

void expect_rounds_identical(const LocalizationRound& a,
                             const LocalizationRound& b) {
  // Bitwise-equal location: the parallel engine must not reorder a
  // single floating-point operation relative to the serial path.
  EXPECT_EQ(a.location.position.x, b.location.position.x);
  EXPECT_EQ(a.location.position.y, b.location.position.y);
  ASSERT_EQ(a.ap_results.size(), b.ap_results.size());
  for (std::size_t i = 0; i < a.ap_results.size(); ++i) {
    EXPECT_EQ(a.ap_results[i].observation.direct_aoa_rad,
              b.ap_results[i].observation.direct_aoa_rad);
    EXPECT_EQ(a.ap_results[i].observation.likelihood,
              b.ap_results[i].observation.likelihood);
    EXPECT_EQ(a.ap_results[i].observation.rssi_dbm,
              b.ap_results[i].observation.rssi_dbm);
    EXPECT_EQ(a.ap_results[i].pooled_estimates.size(),
              b.ap_results[i].pooled_estimates.size());
  }
  EXPECT_EQ(a.ap_stages, b.ap_stages);
  EXPECT_EQ(a.notes, b.notes);
  EXPECT_EQ(a.rejected_aps, b.rejected_aps);
  EXPECT_EQ(a.degraded, b.degraded);
  EXPECT_EQ(a.numerics.summary(), b.numerics.summary());
  EXPECT_EQ(a.numerics.total(), b.numerics.total());
}

TEST(ParallelDeterminism, StrictLocalizeIdenticalAcrossThreadCounts) {
  const RoundPair pair = run_round_both_ways(/*robust=*/false,
                                             /*poison_one_ap=*/false);
  expect_rounds_identical(pair.serial, pair.parallel);
}

TEST(ParallelDeterminism, RobustRoundIdenticalAcrossThreadCounts) {
  const RoundPair pair = run_round_both_ways(/*robust=*/true,
                                             /*poison_one_ap=*/false);
  expect_rounds_identical(pair.serial, pair.parallel);
}

TEST(ParallelDeterminism, DegradedRoundIdenticalAcrossThreadCounts) {
  // An empty capture forces a degradation note and an AP-stage fold —
  // the bookkeeping must also be thread-count invariant.
  const RoundPair pair = run_round_both_ways(/*robust=*/true,
                                             /*poison_one_ap=*/true);
  EXPECT_TRUE(pair.serial.degraded);
  expect_rounds_identical(pair.serial, pair.parallel);
}

TEST(ParallelDeterminism, CallerRngAdvancesIdentically) {
  // After a round, the caller's generator must be in the same state for
  // every thread count (exactly n forks), so downstream draws stay
  // reproducible when threading is toggled.
  unsetenv("SPOTFI_THREADS");
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig exp_cfg;
  exp_cfg.packets_per_group = 5;
  const ExperimentRunner runner(link, office_deployment(), exp_cfg);
  Rng capture_rng(7);
  const auto captures = runner.simulate_captures({5.0, 4.0}, capture_rng);

  std::vector<std::uint64_t> next_draw;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ServerConfig cfg;
    cfg.num_threads = threads;
    cfg.localizer.area_min = runner.deployment().area_min;
    cfg.localizer.area_max = runner.deployment().area_max;
    const SpotFiServer server(link, cfg);
    Rng rng(42);
    (void)server.localize(captures, rng);
    next_draw.push_back(rng());
  }
  ASSERT_EQ(next_draw.size(), 2u);
  EXPECT_EQ(next_draw[0], next_draw[1]);
}

}  // namespace
}  // namespace spotfi
