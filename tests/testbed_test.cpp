// Tests for the testbed: deployment geometry invariants and the
// experiment runner (capture simulation, ground truth bookkeeping, and
// the end-to-end SpotFi + baseline paths).
#include <gtest/gtest.h>

#include <cmath>

#include "common/angles.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

class DeploymentInvariants
    : public ::testing::TestWithParam<Deployment (*)()> {};

TEST_P(DeploymentInvariants, GeometryIsWellFormed) {
  const Deployment d = GetParam()();
  EXPECT_FALSE(d.name.empty());
  EXPECT_GE(d.aps.size(), 2u);
  EXPECT_GE(d.targets.size(), 20u);
  EXPECT_GT(d.plan.wall_count(), 3u);
  // Targets and APs inside the area.
  for (const Vec2 t : d.targets) {
    EXPECT_GE(t.x, d.area_min.x);
    EXPECT_LE(t.x, d.area_max.x);
    EXPECT_GE(t.y, d.area_min.y);
    EXPECT_LE(t.y, d.area_max.y);
  }
  for (const auto& ap : d.aps) {
    EXPECT_GE(ap.position.x, d.area_min.x);
    EXPECT_LE(ap.position.x, d.area_max.x);
  }
  // The ULA aliases back-field sources onto the front half; the apparent
  // AoA is always within [-90, 90] and most APs should genuinely face
  // each target (front-field) so triangulation has usable geometry.
  for (const Vec2 t : d.targets) {
    std::size_t in_front = 0;
    for (const auto& ap : d.aps) {
      EXPECT_LE(std::abs(rad_to_deg(ap.apparent_aoa_of(t))), 90.0);
      if (std::abs(ap.aoa_of(t)) < kPi / 2.0) ++in_front;
    }
    // Triangulation needs at least two genuine front-field bearings.
    EXPECT_GE(in_front, 2u)
        << d.name << " target (" << t.x << "," << t.y << ")";
  }
  // Multipath enumeration works for every (AP, target) pair.
  MultipathConfig mp;
  for (const auto& ap : d.aps) {
    const auto paths = enumerate_paths(d.plan, d.scatterers, ap,
                                       d.targets.front(), mp);
    EXPECT_FALSE(paths.empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllDeployments, DeploymentInvariants,
                         ::testing::Values(&office_deployment,
                                           &high_nlos_deployment,
                                           &corridor_deployment));

TEST(Deployment, OfficeMatchesPaperScale) {
  const Deployment d = office_deployment();
  EXPECT_EQ(d.aps.size(), 6u);
  EXPECT_NEAR(d.area_max.x - d.area_min.x, 16.0, 1e-9);
  EXPECT_NEAR(d.area_max.y - d.area_min.y, 10.0, 1e-9);
  EXPECT_GE(d.targets.size(), 25u);
}

TEST(Deployment, HighNlosHas23ObstructedTargets) {
  const Deployment d = high_nlos_deployment();
  EXPECT_EQ(d.targets.size(), 23u);
  // The scenario premise: every target sees at most 2 APs in LoS.
  for (const Vec2 t : d.targets) {
    EXPECT_LE(count_los_aps(d, t), 2u);
  }
}

TEST(Deployment, CorridorHas25Targets) {
  const Deployment d = corridor_deployment();
  EXPECT_EQ(d.targets.size(), 25u);
}

TEST(Deployment, LosHelpers) {
  const Deployment d = high_nlos_deployment();
  EXPECT_THROW(is_los(d, d.aps.size(), {1.0, 1.0}), ContractViolation);
  // A target inside a room is NLoS to the far bottom APs.
  EXPECT_FALSE(is_los(d, 2, {8.0, 8.0}));
}

TEST(ExperimentRunner, CapturesHaveExpectedShape) {
  ExperimentConfig config;
  config.packets_per_group = 5;
  const ExperimentRunner runner(kLink, office_deployment(), config);
  Rng rng(1);
  const auto captures = runner.simulate_captures({6.0, 3.5}, rng);
  ASSERT_EQ(captures.size(), 6u);
  for (const auto& c : captures) {
    ASSERT_EQ(c.packets.size(), 5u);
    for (const auto& p : c.packets) {
      EXPECT_EQ(p.csi.rows(), kLink.n_antennas);
      EXPECT_EQ(p.csi.cols(), kLink.n_subcarriers);
      EXPECT_LT(p.rssi_dbm, 0.0);  // realistic dBm range
      EXPECT_GT(p.rssi_dbm, -100.0);
    }
  }
}

TEST(ExperimentRunner, ApSubsetIsHonored) {
  ExperimentConfig config;
  config.packets_per_group = 3;
  config.ap_indices = {0, 2, 4};
  const ExperimentRunner runner(kLink, office_deployment(), config);
  EXPECT_EQ(runner.used_aps().size(), 3u);
  Rng rng(2);
  EXPECT_EQ(runner.simulate_captures({6.0, 3.5}, rng).size(), 3u);
  EXPECT_EQ(runner.ground_truth({6.0, 3.5}).size(), 3u);
}

TEST(ExperimentRunner, InvalidApIndexThrows) {
  ExperimentConfig config;
  config.ap_indices = {17};
  EXPECT_THROW(ExperimentRunner(kLink, office_deployment(), config),
               ContractViolation);
}

TEST(ExperimentRunner, GroundTruthMatchesGeometry) {
  const Deployment d = office_deployment();
  ExperimentConfig config;
  const ExperimentRunner runner(kLink, d, config);
  const Vec2 target{6.0, 3.5};
  const auto truth = runner.ground_truth(target);
  ASSERT_EQ(truth.size(), d.aps.size());
  for (std::size_t a = 0; a < truth.size(); ++a) {
    EXPECT_NEAR(truth[a].direct_aoa_rad, d.aps[a].apparent_aoa_of(target),
                1e-12);
    EXPECT_EQ(truth[a].line_of_sight,
              d.plan.line_of_sight(d.aps[a].position, target));
  }
}

TEST(ExperimentRunner, RunTargetProducesBoundedError) {
  ExperimentConfig config;
  config.packets_per_group = 10;
  const ExperimentRunner runner(kLink, office_deployment(), config);
  Rng rng(3);
  const TargetRun run = runner.run_target({8.0, 5.5}, rng);
  EXPECT_EQ(run.truth, (Vec2{8.0, 5.5}));
  EXPECT_GE(run.error_m, 0.0);
  EXPECT_LT(run.error_m, 8.0);  // sanity: inside the room scale
  EXPECT_EQ(run.captures.size(), 6u);
  EXPECT_EQ(run.ap_truth.size(), 6u);
}

TEST(ExperimentRunner, ArrayTrackBaselineRuns) {
  ExperimentConfig config;
  config.packets_per_group = 6;
  const ExperimentRunner runner(kLink, office_deployment(), config);
  Rng rng(4);
  const auto captures = runner.simulate_captures({8.0, 5.5}, rng);
  const Vec2 est = runner.arraytrack_baseline(captures);
  EXPECT_LT(distance(est, {8.0, 5.5}), 8.0);
}

TEST(ExperimentRunner, ErrorSeriesExtracts) {
  std::vector<TargetRun> runs(3);
  runs[0].error_m = 0.5;
  runs[1].error_m = 1.5;
  runs[2].error_m = 2.5;
  const auto errors = error_series(runs);
  ASSERT_EQ(errors.size(), 3u);
  EXPECT_DOUBLE_EQ(errors[1], 1.5);
}

TEST(ExperimentRunner, DeterministicForSameSeed) {
  ExperimentConfig config;
  config.packets_per_group = 5;
  const ExperimentRunner runner(kLink, office_deployment(), config);
  Rng r1(7), r2(7);
  const TargetRun a = runner.run_target({4.0, 3.5}, r1);
  const TargetRun b = runner.run_target({4.0, 3.5}, r2);
  EXPECT_DOUBLE_EQ(a.error_m, b.error_m);
  EXPECT_EQ(a.round.location.position, b.round.location.position);
}

}  // namespace
}  // namespace spotfi
