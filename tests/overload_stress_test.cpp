// Overload stress suite for the multi-tenant session layer: producers
// offering packets at several times the queues' drain rate while pump
// threads fire rounds concurrently. Run under TSan in CI (the
// overload-stress job) with SPOTFI_THREADS=4.
//
// What must hold under sustained 4x overload:
//  * Bounded memory — every queue's high-water mark stays at or below
//    its configured capacity (the queue never grows, it sheds).
//  * No deadlocks and no lost work — every offered packet is accounted
//    as exactly accepted or shed; every planned round as exactly
//    full/degraded/shed.
//  * Admission never blocks — a producer facing a full queue gets an
//    immediate Shed verdict, not a stall.
//  * Monotone degradation — rising queue depth never upgrades the
//    fidelity entitlement.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/session_manager.hpp"
#include "testbed/deployment.hpp"
#include "testbed/experiment.hpp"

namespace spotfi {
namespace {

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;

  explicit Feed(std::size_t packets)
      : runner(kLink, office_deployment(), make_config(packets)) {
    Rng rng(11);
    captures = runner.simulate_captures({6.0, 3.5}, rng);
  }
  static ExperimentConfig make_config(std::size_t packets) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    return config;
  }
  [[nodiscard]] std::vector<ArrayPose> poses() const {
    std::vector<ArrayPose> out;
    for (const auto& capture : captures) out.push_back(capture.pose);
    return out;
  }
};

/// A session config tuned for stress throughput: tiny groups, a coarse
/// MUSIC grid, aggressive degrade rungs — the point is round *count*
/// under pressure, not estimation quality.
SessionConfig stress_session(const Feed& feed, std::size_t queue_capacity) {
  SessionConfig cfg;
  cfg.streaming.group_size = 3;
  cfg.streaming.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.streaming.server.localizer.area_max = feed.runner.deployment().area_max;
  cfg.streaming.server.ap.music.aoa_step_rad *= 4.0;
  cfg.streaming.server.ap.music.tof_step_s *= 4.0;
  cfg.aps = feed.poses();
  cfg.overload.queue_capacity = queue_capacity;
  cfg.overload.degrade_coarse_at = 0.25;
  cfg.overload.degrade_esprit_at = 0.50;
  cfg.overload.degrade_rssi_at = 0.75;
  return cfg;
}

TEST(OverloadStress, FourSessionsAtFourTimesCapacity) {
  constexpr std::size_t kSessions = 4;
  constexpr std::size_t kQueueCapacity = 16;
  // 4x overload: each producer offers four queues' worth of packets
  // while its pump drains concurrently.
  constexpr std::size_t kOffersPerSession = 4 * kQueueCapacity;

  Feed feed(4);
  SessionManager manager(kLink);  // SPOTFI_THREADS applies to the pool
  std::vector<SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    SessionConfig cfg = stress_session(feed, kQueueCapacity);
    cfg.seed = 100 + s;
    ids.push_back(manager.open_session(cfg));
  }

  std::atomic<std::size_t> total_fixes{0};
  std::vector<std::thread> threads;
  for (std::size_t s = 0; s < kSessions; ++s) {
    const SessionId id = ids[s];
    // One producer per session: round-robin the APs, reusing the
    // pre-synthesized packets (admission doesn't care about content).
    threads.emplace_back([&, s, id] {
      std::size_t shed_seen = 0;
      for (std::size_t i = 0; i < kOffersPerSession; ++i) {
        const std::size_t ap = i % feed.captures.size();
        const std::size_t p = (i / feed.captures.size()) % 4;
        const AdmissionVerdict verdict =
            manager.offer(id, ap, feed.captures[ap].packets[p]);
        if (!verdict.admitted()) ++shed_seen;
      }
      (void)shed_seen;
      (void)s;
    });
    // One pump per session, racing its producer.
    threads.emplace_back([&, id] {
      std::size_t drained_quiet = 0;
      while (drained_quiet < 3) {
        const std::size_t fixes = manager.pump(id).size();
        total_fixes.fetch_add(fixes);
        const SessionStats stats = manager.session_stats(id);
        if (stats.offered >= kOffersPerSession) {
          // Producer finished; a final empty drain confirms quiescence.
          ++drained_quiet;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  SessionStats global{};
  for (const SessionId id : ids) {
    const SessionStats stats = manager.session_stats(id);
    // Bounded memory: the queue never grew past its cap.
    EXPECT_LE(stats.queue_high_water, kQueueCapacity) << "session " << id;
    EXPECT_EQ(stats.queue_capacity, kQueueCapacity);
    // Exact packet accounting: offered = accepted + shed, nothing lost.
    EXPECT_EQ(stats.offered, kOffersPerSession) << "session " << id;
    EXPECT_EQ(stats.offered, stats.accepted + stats.shed_packets)
        << "session " << id;
    // Exact round accounting: every planned round ran (full or
    // degraded) or was shed; every run round fixed or failed.
    EXPECT_EQ(stats.fixes + stats.failed_rounds,
              stats.rounds_full + stats.rounds_degraded)
        << "session " << id;
    global.offered += stats.offered;
    global.fixes += stats.fixes;
  }
  EXPECT_EQ(total_fixes.load(), global.fixes);
  // The manager's own aggregate must agree with the per-session sums.
  const SessionStats agg = manager.global_stats();
  EXPECT_EQ(agg.offered, global.offered);
  EXPECT_EQ(agg.fixes, global.fixes);
}

TEST(OverloadStress, AdmissionIsImmediateWhenTheQueueIsFull) {
  // "No round blocks past its deadline waiting for admission": a
  // producer facing a full queue must get its Shed verdict right away —
  // admission is wait-free by construction. With no pump running, every
  // offer past capacity must shed, immediately and forever.
  Feed feed(2);
  SessionConfig cfg = stress_session(feed, 8);
  cfg.streaming.group_size = 1000;  // rounds never fire
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);

  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(manager.offer(id, 0, feed.captures[0].packets[0]).admitted());
  }
  for (int i = 0; i < 100; ++i) {
    const AdmissionVerdict verdict =
        manager.offer(id, 0, feed.captures[0].packets[0]);
    EXPECT_EQ(verdict.kind, AdmissionVerdict::Kind::kShed);
    EXPECT_STREQ(verdict.reason, "ingest queue full");
  }
  const SessionStats stats = manager.session_stats(id);
  EXPECT_EQ(stats.shed_packets, 100u);
  EXPECT_EQ(stats.queue_high_water, 8u);
}

TEST(OverloadStress, DegradationIsMonotoneInQueueDepth) {
  // Pure-policy property: deeper queues never entitle higher fidelity,
  // for several rung configurations including degenerate ones.
  const struct {
    double coarse, esprit, rssi;
  } configs[] = {
      {0.50, 0.75, 0.90},
      {0.25, 0.50, 0.75},
      {0.0, 0.0, 0.0},    // always at the bottom rung past depth 0
      {1.0, 1.0, 1.0},    // only a completely full queue degrades
      {0.10, 0.90, 0.90},
  };
  for (const auto& c : configs) {
    OverloadConfig cfg;
    cfg.queue_capacity = 32;
    cfg.degrade_coarse_at = c.coarse;
    cfg.degrade_esprit_at = c.esprit;
    cfg.degrade_rssi_at = c.rssi;
    const OverloadPolicy policy(cfg);
    ShedLevel prev = ShedLevel::kFull;
    for (std::size_t depth = 0; depth <= cfg.queue_capacity; ++depth) {
      const ShedLevel level = policy.level_for_depth(depth);
      EXPECT_GE(level, prev) << "depth " << depth;
      const AdmissionVerdict verdict = policy.admit(depth);
      EXPECT_EQ(verdict.level, level);
      EXPECT_EQ(verdict.admitted(), true);  // admit never sheds by itself
      EXPECT_EQ(verdict.kind == AdmissionVerdict::Kind::kDegraded,
                level != ShedLevel::kFull);
      prev = level;
    }
  }
}

}  // namespace
}  // namespace spotfi
