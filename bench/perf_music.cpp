// Performance microbenchmarks for the signal-processing primitives:
// Hermitian eigendecomposition, smoothed-CSI construction, ToF
// sanitization, the joint 2-D MUSIC spectrum sweep, and full per-packet
// estimation. These quantify why the Kronecker-factorized spectrum makes
// whole-testbed experiments feasible on one core.
#include <benchmark/benchmark.h>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "csi/sanitize.hpp"
#include "csi/smoothing.hpp"
#include "linalg/hermitian_eig.hpp"
#include "music/estimators.hpp"

namespace {

using namespace spotfi;

CMatrix test_csi() {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ImpairmentConfig imp;
  const CsiSynthesizer synth(link, imp);
  std::vector<PathComponent> paths;
  const double aoas[] = {-50.0, -10.0, 15.0, 45.0, 70.0};
  const double tofs[] = {20e-9, 60e-9, 110e-9, 170e-9, 240e-9};
  for (int l = 0; l < 5; ++l) {
    PathComponent p;
    p.aoa_rad = deg_to_rad(aoas[l]);
    p.tof_s = tofs[l];
    p.gain_db = -50.0 - 2.0 * l;
    paths.push_back(p);
  }
  Rng rng(7);
  return synth.synthesize(paths, 0.0, rng).csi;
}

void BM_HermitianEig30(benchmark::State& state) {
  const CMatrix x = smoothed_csi(test_csi());
  const CMatrix cov = x.gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(eigh(cov));
  }
}
BENCHMARK(BM_HermitianEig30);

void BM_Gram30(benchmark::State& state) {
  // X X^H of the 30 x 32 smoothed CSI — the covariance build that feeds
  // every eigendecomposition in the pipeline.
  const CMatrix x = smoothed_csi(test_csi());
  for (auto _ : state) {
    benchmark::DoNotOptimize(x.gram());
  }
}
BENCHMARK(BM_Gram30);

void BM_MatMul30(benchmark::State& state) {
  // 30 x 30 complex product (the eigensolver's rotation updates live in
  // this regime).
  const CMatrix x = smoothed_csi(test_csi());
  const CMatrix cov = x.gram();
  for (auto _ : state) {
    benchmark::DoNotOptimize(cov * cov);
  }
}
BENCHMARK(BM_MatMul30);

void BM_SmoothedCsi(benchmark::State& state) {
  const CMatrix csi = test_csi();
  for (auto _ : state) {
    benchmark::DoNotOptimize(smoothed_csi(csi));
  }
}
BENCHMARK(BM_SmoothedCsi);

void BM_SanitizeTof(benchmark::State& state) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const CMatrix csi = test_csi();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sanitize_tof(csi, link));
  }
}
BENCHMARK(BM_SanitizeTof);

void BM_JointSpectrum(benchmark::State& state) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const JointMusicEstimator estimator(link);
  const CMatrix csi = test_csi();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.spectrum(csi));
  }
}
BENCHMARK(BM_JointSpectrum);

void BM_JointEstimatePacket(benchmark::State& state) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const JointMusicEstimator estimator(link);
  const CMatrix csi = test_csi();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(csi));
  }
}
BENCHMARK(BM_JointEstimatePacket);

void BM_MusicAoaPacket(benchmark::State& state) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const MusicAoaEstimator estimator(link);
  const CMatrix csi = test_csi();
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(csi));
  }
}
BENCHMARK(BM_MusicAoaPacket);

}  // namespace

BENCHMARK_MAIN();
