// Figure 9(b): localization error vs. number of packets per group.
//
// Paper's result: with just 10 packets SpotFi reaches ~0.5 m median vs
// 0.4 m with 40 — localization needs only a small burst of traffic.
//
//   ./fig9b_packets [seed]
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const Deployment deployment = office_deployment();

  std::printf("# Fig 9(b): localization error vs packets used, office "
              "deployment, seed=%llu\n",
              static_cast<unsigned long long>(seed));

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const std::size_t packets : {6u, 10u, 20u, 40u}) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    const ExperimentRunner runner(link, deployment, config);
    std::vector<double> errors;
    Rng rng(seed);
    for (const Vec2 target : deployment.targets) {
      errors.push_back(runner.run_target(target, rng).error_m);
    }
    bench::print_summary(std::to_string(packets) + " packets", errors);
    names.push_back(std::to_string(packets) + "pkt");
    series.push_back(std::move(errors));
  }
  std::printf("\n");
  bench::print_cdf_table(names, series);
  std::printf("\n# paper: ~0.5 m median with 10 packets, 0.4 m with 40\n");
  return 0;
}
