// Multi-tenant session-layer benchmarks (DESIGN.md §12): sustained
// localization rounds/sec and p99 round latency at 10/100/1000
// concurrent sessions sharing one SessionManager, plus the
// zero-allocation contract on the admission path under overload.
//
// The fidelity rung scales with the tenant count the way a deployed
// controller would run it: 10 and 100 sessions at the ESPRIT rung
// (search-free super-resolution), 1000 sessions at RSSI-only — the
// ladder's last rung is precisely what makes a thousand tenants
// sustainable at all.
//
// BM_SessionAdmit_Steady is the allocation gate: once a session's
// ingest queue is full, every further offer must be graded, shed, and
// counted without touching the heap. bench_regression.py fails the
// build if its allocs_per_packet counter ever reads nonzero.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <new>
#include <vector>

#include "core/session_manager.hpp"
#include "testbed/deployment.hpp"
#include "testbed/experiment.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_allocated_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// Same spurious-warning suppression as perf_memory.cpp: our operator
// new hands out malloc'd memory, so free() is the matching deallocator.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace spotfi;

const LinkConfig kLink = LinkConfig::intel5300_40mhz();

struct Feed {
  ExperimentRunner runner;
  std::vector<ApCapture> captures;

  explicit Feed(std::size_t packets)
      : runner(kLink, office_deployment(), make_config(packets)) {
    Rng rng(11);
    captures = runner.simulate_captures({6.0, 3.5}, rng);
  }
  static ExperimentConfig make_config(std::size_t packets) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    return config;
  }
};

constexpr std::size_t kGroupSize = 2;
constexpr std::size_t kApsPerSession = 3;

/// One tenant's config at the given fidelity rung. The entry stage is
/// set on the base server directly, so even "full fidelity" rounds of
/// this bench enter the fallback chain at the rung under test.
SessionConfig bench_session(const Feed& feed, ShedLevel level,
                            std::uint64_t seed) {
  SessionConfig cfg;
  cfg.streaming.group_size = kGroupSize;
  cfg.streaming.server.localizer.area_min = feed.runner.deployment().area_min;
  cfg.streaming.server.localizer.area_max = feed.runner.deployment().area_max;
  cfg.streaming.server.ap.fallback.entry_stage = entry_stage_for(level);
  for (std::size_t a = 0; a < kApsPerSession; ++a) {
    cfg.aps.push_back(feed.captures[a].pose);
  }
  cfg.overload.queue_capacity = 2 * kApsPerSession * kGroupSize;
  cfg.seed = seed;
  return cfg;
}

/// Sustained throughput: every iteration offers one full packet group
/// to every session and pumps every session once — n_sessions rounds
/// per iteration. items_per_second therefore reads as rounds/sec; the
/// p99 counter is the 99th-percentile single-round pump latency.
void BM_SessionRounds(benchmark::State& state) {
  const auto n_sessions = static_cast<std::size_t>(state.range(0));
  const ShedLevel level =
      n_sessions >= 1000 ? ShedLevel::kRssiOnly : ShedLevel::kEsprit;

  Feed feed(kGroupSize);
  SessionManager manager(kLink);
  std::vector<SessionId> ids;
  ids.reserve(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    ids.push_back(manager.open_session(bench_session(feed, level, 100 + s)));
  }

  std::vector<double> round_s;
  std::size_t rounds = 0;
  for (auto _ : state) {
    for (const SessionId id : ids) {
      for (std::size_t a = 0; a < kApsPerSession; ++a) {
        for (std::size_t p = 0; p < kGroupSize; ++p) {
          benchmark::DoNotOptimize(
              manager.offer(id, a, feed.captures[a].packets[p]));
        }
      }
      const auto t0 = std::chrono::steady_clock::now();
      const auto fixes = manager.pump(id);
      const auto t1 = std::chrono::steady_clock::now();
      round_s.push_back(std::chrono::duration<double>(t1 - t0).count());
      benchmark::DoNotOptimize(fixes.data());
    }
    rounds += n_sessions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));

  std::sort(round_s.begin(), round_s.end());
  const std::size_t p99 =
      std::min(round_s.size() - 1, (round_s.size() * 99) / 100);
  state.counters["p99_round_ms"] = benchmark::Counter(round_s[p99] * 1e3);
  state.counters["sessions"] =
      benchmark::Counter(static_cast<double>(n_sessions));
}
BENCHMARK(BM_SessionRounds)
    ->Arg(10)
    ->Arg(100)
    ->Arg(1000)
    ->Unit(benchmark::kMillisecond);

/// The admission path in overload steady state: the queue is full, so
/// every offer is graded and shed at the boundary. This must not touch
/// the heap — verdict reasons are static strings and the SPSC slots
/// are preallocated — and the regression gate enforces 0 exactly.
void BM_SessionAdmit_Steady(benchmark::State& state) {
  Feed feed(1);
  SessionConfig cfg = bench_session(feed, ShedLevel::kFull, 7);
  cfg.streaming.group_size = 1000000;  // rounds never fire
  cfg.overload.queue_capacity = 64;
  SessionManagerConfig mgr_cfg;
  mgr_cfg.num_threads = 1;
  SessionManager manager(kLink, mgr_cfg);
  const SessionId id = manager.open_session(cfg);

  // Fill the queue; an empty CsiPacket carries no heap storage, so the
  // measured loop is pure admission machinery.
  while (manager.offer(id, 0, CsiPacket{}).admitted()) {
  }
  const std::size_t allocs = g_allocations.load();
  const std::size_t bytes = g_allocated_bytes.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.offer(id, 0, CsiPacket{}));
  }
  // Snapshot both deltas before touching the counter map — inserting
  // the first counter allocates and would pollute the second reading.
  const double d_allocs = static_cast<double>(g_allocations.load() - allocs);
  const double d_bytes = static_cast<double>(g_allocated_bytes.load() - bytes);
  const double n = static_cast<double>(state.iterations());
  state.counters["allocs_per_packet"] = benchmark::Counter(d_allocs / n);
  state.counters["bytes_per_packet"] = benchmark::Counter(d_bytes / n);
}
BENCHMARK(BM_SessionAdmit_Steady);

}  // namespace

BENCHMARK_MAIN();
