// Ablation: Eq. 8 likelihood weight sweep.
//
// Precomputes the per-AP cluster summaries once across all deployments,
// then re-scores the direct-path selection under a grid of Eq. 8 weights
// (w_C, w_theta, w_tau, w_s), reporting the median/p80 selection error
// for each setting — the calibration behind DirectPathConfig's defaults.
//
//   ./ablation_weights [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/angles.hpp"
#include "core/ap_processor.hpp"
#include "music/steering.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

struct Case {
  std::vector<ClusterSummary> clusters;
  double truth_aoa_rad = 0.0;
};

double selection_error_deg(const Case& c, double w_count, double w_sigma_aoa,
                           double w_sigma_tof, double w_mean_tof,
                           double tof_scale) {
  std::size_t best = 0;
  double best_score = -1e300;
  for (std::size_t i = 0; i < c.clusters.size(); ++i) {
    const auto& cl = c.clusters[i];
    const double score = w_count * static_cast<double>(cl.count) -
                         w_sigma_aoa * cl.sigma_aoa -
                         w_sigma_tof * cl.sigma_tof -
                         w_mean_tof * (cl.mean_tof_s / tof_scale);
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return std::abs(rad_to_deg(c.clusters[best].mean_aoa_rad) -
                  rad_to_deg(c.truth_aoa_rad));
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const double tof_scale = tof_period(link) / 2.0;

  ExperimentConfig config;
  config.packets_per_group = 15;

  std::vector<Case> cases;
  Rng rng(seed);
  for (const Deployment& deployment :
       {office_deployment(), high_nlos_deployment(), corridor_deployment()}) {
    const ExperimentRunner runner(link, deployment, config);
    for (const Vec2 target : runner.deployment().targets) {
      const auto captures = runner.simulate_captures(target, rng);
      const auto truth = runner.ground_truth(target);
      for (std::size_t a = 0; a < captures.size(); ++a) {
        const ApProcessor processor(link, captures[a].pose, {});
        Case c;
        c.clusters = processor.process(captures[a].packets, rng).clusters;
        c.truth_aoa_rad = truth[a].direct_aoa_rad;
        cases.push_back(std::move(c));
      }
    }
  }
  std::printf("# Eq. 8 weight sweep over %zu (target, AP) cases, seed=%llu\n",
              cases.size(), static_cast<unsigned long long>(seed));

  // Oracle floor for reference.
  {
    std::vector<double> err;
    for (const auto& c : cases) {
      err.push_back(std::abs(
          rad_to_deg(
              c.clusters[select_oracle(c.clusters, c.truth_aoa_rad)]
                  .mean_aoa_rad) -
          rad_to_deg(c.truth_aoa_rad)));
    }
    bench::print_summary("oracle floor", err, "deg");
  }

  std::printf("%8s %8s %8s %8s   %10s %10s\n", "w_C", "w_sigTh", "w_sigTau",
              "w_meanToF", "median", "p80");
  for (const double w_count : {0.05, 0.1, 0.15, 0.25}) {
    for (const double w_sig_aoa : {2.0, 5.0, 10.0, 25.0}) {
      for (const double w_sig_tof : {2.0, 5.0, 10.0, 25.0}) {
        for (const double w_mean : {1.0, 2.0, 4.0, 8.0}) {
          std::vector<double> err;
          err.reserve(cases.size());
          for (const auto& c : cases) {
            err.push_back(selection_error_deg(c, w_count, w_sig_aoa,
                                              w_sig_tof, w_mean, tof_scale));
          }
          std::printf("%8.2f %8.1f %8.1f %8.1f   %10.2f %10.2f\n", w_count,
                      w_sig_aoa, w_sig_tof, w_mean, median(err),
                      percentile(err, 80.0));
        }
      }
    }
  }
  return 0;
}
