// Figure 8(b): CDF of direct-path AoA *selection* error for the four
// schemes the paper compares, all operating on SpotFi's super-resolution
// estimates:
//   SpotFi  — Eq. 8 likelihood (cluster tightness + population + ToF)
//   LTEye   — smallest (relative) ToF
//   CUPID   — strongest MUSIC spectrum power
//   Oracle  — closest to the ground-truth direct-path AoA
//
// Paper's result: SpotFi tracks the Oracle; smallest-ToF is ~10 deg worse
// at the 80th percentile; strongest-power is the worst.
//
//   ./fig8b_selection [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/angles.hpp"
#include "core/ap_processor.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 15;

  std::vector<double> err_spotfi, err_ltye, err_cupid, err_oracle;
  Rng rng(seed);
  // All deployment scenarios, as in the paper.
  for (const Deployment& deployment :
       {office_deployment(), high_nlos_deployment(), corridor_deployment()}) {
    const ExperimentRunner runner(link, deployment, config);
    for (const Vec2 target : runner.deployment().targets) {
      const auto captures = runner.simulate_captures(target, rng);
      const auto truth = runner.ground_truth(target);
      for (std::size_t a = 0; a < captures.size(); ++a) {
        const ApProcessor processor(link, captures[a].pose, {});
        const ApResult result = processor.process(captures[a].packets, rng);
        const auto& clusters = result.clusters;
        const double t = rad_to_deg(truth[a].direct_aoa_rad);
        auto err = [&](std::size_t pick) {
          return std::abs(rad_to_deg(clusters[pick].mean_aoa_rad) - t);
        };
        err_spotfi.push_back(err(select_spotfi(clusters)));
        err_ltye.push_back(err(select_smallest_tof(clusters)));
        err_cupid.push_back(err(select_strongest(clusters)));
        err_oracle.push_back(
            err(select_oracle(clusters, truth[a].direct_aoa_rad)));
      }
    }
  }

  std::printf("# Fig 8(b): direct-path AoA selection error, all "
              "deployments, seed=%llu\n",
              static_cast<unsigned long long>(seed));
  bench::print_summary("SpotFi (Eq.8)", err_spotfi, "deg");
  bench::print_summary("LTEye (min ToF)", err_ltye, "deg");
  bench::print_summary("CUPID (max power)", err_cupid, "deg");
  bench::print_summary("Oracle", err_oracle, "deg");
  std::printf("\n");
  const std::vector<std::string> names{"SpotFi", "LTEye", "CUPID", "Oracle"};
  const std::vector<std::vector<double>> series{err_spotfi, err_ltye,
                                                err_cupid, err_oracle};
  bench::print_cdf_table(names, series);
  std::printf("\n# paper: SpotFi closest to Oracle; min-ToF ~10 deg worse "
              "at p80; max-power worst\n");
  return 0;
}
