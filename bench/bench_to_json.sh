#!/usr/bin/env bash
# Benchmark-regression harness: runs the perf benches (perf_music,
# perf_pipeline, perf_memory) in google-benchmark's JSON mode and merges
# them into a single machine-diffable snapshot. The checked-in BENCH_<PR>.json files
# give every future PR a perf trajectory to defend — regenerate on the
# same machine and compare real_time per benchmark.
#
# Usage: bench/bench_to_json.sh <build-dir> <out.json> [--smoke]
#   --smoke  near-zero min-time per benchmark: exercises the full runner
#            path in seconds (CI uses this; numbers are NOT stable).
#
# Do not export SPOTFI_THREADS when running this: the pipeline benches
# parameterize thread counts explicitly (threads:1 vs threads:4) and the
# env override would collapse every variant onto one value.
set -euo pipefail

BUILD_DIR=${1:?usage: bench_to_json.sh <build-dir> <out.json> [--smoke]}
OUT=${2:?usage: bench_to_json.sh <build-dir> <out.json> [--smoke]}
MODE=${3:-}

MIN_TIME=0.5
if [[ "${MODE}" == "--smoke" ]]; then
  MIN_TIME=0.01
fi

if [[ -n "${SPOTFI_THREADS:-}" ]]; then
  echo "bench_to_json: unset SPOTFI_THREADS first (it overrides the" \
       "per-benchmark thread parameterization)" >&2
  exit 1
fi

TMP=$(mktemp -d)
trap 'rm -rf "${TMP}"' EXIT

"${BUILD_DIR}/bench/perf_music" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/perf_music.json"
"${BUILD_DIR}/bench/perf_pipeline" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/perf_pipeline.json"
"${BUILD_DIR}/bench/perf_memory" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/perf_memory.json"
"${BUILD_DIR}/bench/perf_sessions" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/perf_sessions.json"
"${BUILD_DIR}/bench/perf_transport" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/perf_transport.json"
"${BUILD_DIR}/bench/perf_durability" \
  --benchmark_format=json --benchmark_min_time="${MIN_TIME}" \
  > "${TMP}/perf_durability.json"

python3 - "${TMP}/perf_music.json" "${TMP}/perf_pipeline.json" \
  "${TMP}/perf_memory.json" "${TMP}/perf_sessions.json" \
  "${TMP}/perf_transport.json" "${TMP}/perf_durability.json" \
  "${OUT}" "${MODE}" <<'PY'
import json
import sys

(music_path, pipeline_path, memory_path, sessions_path, transport_path,
 durability_path, out_path, mode) = sys.argv[1:9]

merged = {
    "schema": "spotfi-bench-v1",
    "smoke": mode == "--smoke",
    "suites": {},
}
for name, path in (("perf_music", music_path),
                   ("perf_pipeline", pipeline_path),
                   ("perf_memory", memory_path),
                   ("perf_sessions", sessions_path),
                   ("perf_transport", transport_path),
                   ("perf_durability", durability_path)):
    with open(path) as f:
        raw = json.load(f)
    merged.setdefault("context", raw.get("context", {}))
    suite = []
    for b in raw.get("benchmarks", []):
        entry = {
            "name": b["name"],
            "real_time_ns": b["real_time"],
            "cpu_time_ns": b["cpu_time"],
            "iterations": b["iterations"],
        }
        # Memory benches attach custom counters (allocs/bytes per packet,
        # arena high-water); session benches attach p99 round latency.
        # Keep them so the zero-allocation contract and the tail-latency
        # trajectory are visible in the snapshot.
        for key in ("allocs_per_packet", "bytes_per_packet",
                    "arena_high_water_bytes", "p99_round_ms", "sessions"):
            if key in b:
                entry[key] = b[key]
        suite.append(entry)
    merged["suites"][name] = suite

with open(out_path, "w") as f:
    json.dump(merged, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {out_path}")
PY
