// Fault matrix: streaming localization accuracy under injected faults.
//
// Runs the streaming pipeline through the fault injector, one scenario
// per operational failure mode (AP outage, packet loss, NaN bursts, a
// dead RF chain, power clipping, reordering + stale timestamps), and
// reports fixes emitted, failed rounds, outlier rejections, and the
// error distribution per scenario. The robustness claim being measured:
// every scenario keeps emitting fixes (no permanent stall, no escaped
// exception) and the error degrades boundedly relative to the clean
// stream, mirroring the spirit of Fig. 9(a)'s fewer-APs degradation.
//
//   ./fault_matrix [seed] [duration_s]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "channel/faults.hpp"
#include "core/streaming.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

struct Scenario {
  std::string name;
  FaultPlan plan;
  bool screen_packets = true;
};

struct ScenarioResult {
  std::vector<double> errors;
  std::size_t fixes = 0;
  std::size_t degraded_fixes = 0;
  std::size_t failed_rounds = 0;
  std::size_t rejections = 0;
};

ScenarioResult run_scenario(const std::vector<ApCapture>& captures,
                            const Deployment& deployment, Vec2 target,
                            const Scenario& scenario, std::uint64_t seed) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  StreamingConfig cfg;
  cfg.group_size = 5;
  cfg.screen_packets = scenario.screen_packets;
  cfg.server.localizer.area_min = deployment.area_min;
  cfg.server.localizer.area_max = deployment.area_max;
  cfg.degradation.round_deadline_s = 0.5;
  cfg.degradation.degraded_after_s = 0.5;
  cfg.degradation.dead_after_s = 1.0;
  StreamingLocalizer server(link, cfg);
  for (const auto& capture : captures) server.add_ap(capture.pose);

  FaultInjector injector(scenario.plan, captures.size());
  Rng rng(seed);
  ScenarioResult result;
  const std::size_t n_packets = captures.front().packets.size();
  for (std::size_t p = 0; p < n_packets; ++p) {
    for (std::size_t a = 0; a < captures.size(); ++a) {
      for (const auto& packet :
           injector.inject(a, captures[a].packets[p], rng)) {
        const auto fix = server.push(a, packet, rng);
        if (!fix) continue;
        ++result.fixes;
        if (fix->degraded) ++result.degraded_fixes;
        result.rejections += fix->round.rejected_aps.size();
        result.errors.push_back(distance(fix->raw, target));
      }
    }
  }
  result.failed_rounds = server.failed_rounds();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const double duration_s = argc >= 3 ? std::atof(argv[2]) : 8.0;
  if (duration_s < 1.0) {
    std::fprintf(stderr, "duration must be >= 1 s (got %s)\n",
                 argc >= 3 ? argv[2] : "?");
    return 1;
  }

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const Deployment deployment = office_deployment();
  ExperimentConfig config;
  config.packets_per_group = static_cast<std::size_t>(duration_s / 0.1);
  const ExperimentRunner runner(link, deployment, config);

  const Vec2 target{6.0, 3.5};
  Rng capture_rng(seed);
  const auto captures = runner.simulate_captures(target, capture_rng);
  const std::size_t n_aps = captures.size();

  std::vector<Scenario> scenarios;
  scenarios.push_back({"clean", {}, true});
  {
    Scenario s{"ap-outage", {}, true};
    s.plan.aps.resize(n_aps);
    s.plan.aps[2].outages = {{duration_s / 3.0, 2.0 * duration_s / 3.0}};
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"loss-30pct", {}, true};
    s.plan.aps.resize(n_aps);
    for (auto& ap : s.plan.aps) ap.loss_prob = 0.3;
    scenarios.push_back(std::move(s));
  }
  {
    // NaN bursts on two APs with the quality screen off, so the corrupt
    // packets reach the estimators and the fallback chain has to absorb
    // them.
    Scenario s{"nan-bursts", {}, false};
    s.plan.aps.resize(n_aps);
    s.plan.aps[1].nan_burst_prob = 0.5;
    s.plan.aps[3].nan_burst_prob = 0.5;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"dead-chain", {}, true};
    s.plan.aps.resize(n_aps);
    s.plan.aps[0].dead_chain = 1;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"clip-20pct", {}, true};
    s.plan.aps.resize(n_aps);
    for (auto& ap : s.plan.aps) ap.clip_prob = 0.2;
    scenarios.push_back(std::move(s));
  }
  {
    Scenario s{"reorder+stale", {}, true};
    s.plan.aps.resize(n_aps);
    for (auto& ap : s.plan.aps) {
      ap.reorder_prob = 0.2;
      ap.reorder_delay = 2;
      ap.stale_prob = 0.1;
    }
    scenarios.push_back(std::move(s));
  }

  std::printf("# Fault matrix: streaming accuracy under injected faults, "
              "office deployment, %.1f s stream, seed=%llu\n",
              duration_s, static_cast<unsigned long long>(seed));
  std::printf("%-14s %6s %9s %7s %8s   error\n", "# scenario", "fixes",
              "degraded", "failed", "rejects");

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const auto& scenario : scenarios) {
    const ScenarioResult r =
        run_scenario(captures, deployment, target, scenario, seed + 7);
    std::printf("%-14s %6zu %9zu %7zu %8zu   ", scenario.name.c_str(),
                r.fixes, r.degraded_fixes, r.failed_rounds, r.rejections);
    if (r.errors.empty()) {
      std::printf("(no fixes)\n");
    } else {
      std::printf("median=%5.2f m  p80=%5.2f m\n", median(r.errors),
                  percentile(r.errors, 80.0));
      names.push_back(scenario.name);
      series.push_back(r.errors);
    }
  }
  std::printf("\n");
  bench::print_cdf_table(names, series);
  return 0;
}
