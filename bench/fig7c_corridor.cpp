// Figure 7(c): CDF of localization error in corridors — APs along the
// side walls give correlated bearings and poor triangulation geometry.
//
// Paper's result: SpotFi median ~1.1 m vs ArrayTrack ~4 m.
//
//   ./fig7c_corridor [seed] [packets_per_group]
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  ExperimentConfig config;
  config.packets_per_group =
      argc >= 3 ? static_cast<std::size_t>(std::atoi(argv[2])) : 40;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const ExperimentRunner runner(link, corridor_deployment(), config);
  std::printf("# Fig 7(c): corridor deployment — %zu targets, %zu APs, "
              "%zu packets/group, seed=%llu\n",
              runner.deployment().targets.size(),
              runner.deployment().aps.size(), config.packets_per_group,
              static_cast<unsigned long long>(seed));

  std::vector<double> spotfi_errors, arraytrack_errors;
  Rng rng(seed);
  for (const Vec2 target : runner.deployment().targets) {
    const TargetRun run = runner.run_target(target, rng);
    spotfi_errors.push_back(run.error_m);
    arraytrack_errors.push_back(
        distance(runner.arraytrack_baseline(run.captures), target));
  }

  bench::print_summary("SpotFi", spotfi_errors);
  bench::print_summary("ArrayTrack(3ant)", arraytrack_errors);
  std::printf("\n");
  const std::vector<std::string> names{"SpotFi", "ArrayTrack"};
  const std::vector<std::vector<double>> series{spotfi_errors,
                                                arraytrack_errors};
  bench::print_cdf_table(names, series);
  std::printf("\n# paper: SpotFi median ~1.1 m; ArrayTrack ~4 m\n");
  return 0;
}
