#!/usr/bin/env python3
"""Bench-regression gate: fail when the candidate run is >N% slower.

Compares a fresh bench_to_json.sh snapshot against the checked-in
baseline (BENCH_<PR>.json). Raw nanoseconds are not comparable across
machines, so every benchmark is first normalized by a reference kernel
measured in the *same* file (default: BM_MatMul30, a pure-compute
kernel with no allocation or threading behavior to drift). The gate
then compares normalized ratios:

    regression = (t_cand / ref_cand) / (t_base / ref_base) - 1

and fails when any benchmark regresses past the threshold (default
15%). Benchmarks present on only one side are reported but do not
fail the gate — new benches have no baseline yet, retired ones no
candidate.

The zero-allocation contract is machine-independent, so it is gated
exactly: the steady-state packet benches (`BM_PacketEstimate_Workspace*`)
and the session-layer admission bench (`BM_SessionAdmit_Steady*`) must
report 0 allocs/packet — shedding under overload must never touch the
heap — as must the journal-append bench (`BM_JournalAppend_Steady*`),
whose preallocated record buffer keeps durability off the allocator. Group-stage benches (`BM_GroupProcess_*`) are exempt — their
counters intentionally report the constant per-group bookkeeping
amortized over the group size, which is small but nonzero. The session
throughput benches (`BM_SessionRounds/*`) participate in the normalized
>threshold gate like every other benchmark.

Usage:
    bench_regression.py <baseline.json> <candidate.json>
        [--threshold 0.15] [--reference BM_MatMul30]
    bench_regression.py <candidate.json>               # newest BENCH_*.json
    bench_regression.py --baseline <path> <candidate.json>

The baseline may be named three ways: positionally (first of two
paths), via --baseline (reads naturally in scripts), or omitted
entirely — in which case the highest-numbered checked-in BENCH_<N>.json
next to the repo root is used, so a local before/after comparison of a
refactor is just `bench_regression.py my_run.json`.
"""

import argparse
import glob
import json
import os
import re
import sys


def default_baseline():
    """The highest-numbered checked-in BENCH_<N>.json (repo root)."""
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    best = None
    best_n = -1
    for path in glob.glob(os.path.join(root, "BENCH_*.json")):
        m = re.fullmatch(r"BENCH_(\d+)\.json", os.path.basename(path))
        if m and int(m.group(1)) > best_n:
            best_n = int(m.group(1))
            best = path
    if best is None:
        sys.exit("bench_regression: no checked-in BENCH_<N>.json found; "
                 "name a baseline explicitly (positionally or --baseline)")
    return best


def require(entry, key, path):
    """Fetch a required key from a benchmark entry with a clean error.

    A hand-edited or truncated BENCH_*.json used to surface as a raw
    KeyError traceback; name the offending key and file instead.
    """
    try:
        return entry[key]
    except (KeyError, TypeError):
        name = entry.get("name", "<unnamed>") if isinstance(entry, dict) \
            else "<malformed>"
        sys.exit(f"bench_regression: benchmark entry {name!r} in {path} "
                 f"is missing required key {key!r}")


def load_entries(path):
    with open(path) as f:
        raw = json.load(f)
    if raw.get("schema") != "spotfi-bench-v1":
        sys.exit(f"{path}: not a spotfi-bench-v1 snapshot")
    entries = {}
    for suite in raw.get("suites", {}).values():
        for b in suite:
            entries[require(b, "name", path)] = b
    return entries, bool(raw.get("smoke"))


def main():
    ap = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("paths", nargs="+", metavar="json",
                    help="<baseline> <candidate>, or just <candidate> "
                         "(baseline defaults to the newest BENCH_<N>.json)")
    ap.add_argument("--baseline", default=None,
                    help="explicit baseline snapshot path (overrides the "
                         "checked-in BENCH_<N>.json convention)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="maximum tolerated normalized slowdown (0.15 = 15%%)")
    ap.add_argument("--reference", default="BM_MatMul30",
                    help="kernel used to normalize out machine speed")
    args = ap.parse_args()

    if len(args.paths) == 2:
        if args.baseline is not None:
            sys.exit("bench_regression: --baseline conflicts with naming "
                     "two positional paths")
        args.baseline, args.candidate = args.paths
    elif len(args.paths) == 1:
        args.candidate = args.paths[0]
        if args.baseline is None:
            args.baseline = default_baseline()
            print(f"baseline defaulted to {args.baseline}")
    else:
        sys.exit("bench_regression: expected <candidate> or "
                 "<baseline> <candidate>")

    base, base_smoke = load_entries(args.baseline)
    cand, cand_smoke = load_entries(args.candidate)
    if base_smoke or cand_smoke:
        # Smoke numbers come from near-zero min-time runs and are pure
        # noise; gating on them would make CI flaky.
        sys.exit("bench_regression: refusing to gate on --smoke snapshots "
                 "(regenerate without --smoke)")

    for name, entries in (("baseline", base), ("candidate", cand)):
        if args.reference not in entries:
            sys.exit(f"bench_regression: reference {args.reference} "
                     f"missing from {name}")
    ref_base = require(base[args.reference], "real_time_ns", args.baseline)
    ref_cand = require(cand[args.reference], "real_time_ns", args.candidate)
    if ref_base <= 0 or ref_cand <= 0:
        sys.exit("bench_regression: non-positive reference timing")

    failures = []
    print(f"reference {args.reference}: baseline {ref_base:.1f} ns, "
          f"candidate {ref_cand:.1f} ns "
          f"(machine-speed ratio {ref_cand / ref_base:.3f}x)")
    for name in sorted(set(base) | set(cand)):
        if name == args.reference:
            continue
        if name not in base:
            print(f"  NEW      {name} (no baseline, not gated)")
            continue
        if name not in cand:
            print(f"  RETIRED  {name} (no candidate, not gated)")
            continue
        norm_base = require(base[name], "real_time_ns", args.baseline) / ref_base
        norm_cand = require(cand[name], "real_time_ns", args.candidate) / ref_cand
        change = norm_cand / norm_base - 1.0
        tag = "ok"
        if change > args.threshold:
            tag = "REGRESSED"
            failures.append(f"{name}: {change * 100.0:+.1f}% normalized "
                            f"(threshold {args.threshold * 100.0:.0f}%)")
        print(f"  {tag:9s} {name}: {change * 100.0:+.1f}% normalized")

    # Exact zero-allocation gate: only the steady-state benches promise
    # 0 — the per-packet arena path and the session admission/shed path.
    # BM_GroupProcess_Workspace reports the per-group bookkeeping
    # constant amortized over group size (nonzero by design).
    zero_alloc_patterns = ("PacketEstimate_Workspace", "SessionAdmit_Steady",
                           "TransportDeliver_Steady", "JournalAppend_Steady")
    for name, entry in sorted(cand.items()):
        if (any(p in name for p in zero_alloc_patterns)
                and "allocs_per_packet" in entry):
            allocs = entry["allocs_per_packet"]
            if allocs > 0:
                failures.append(f"{name}: {allocs} heap allocations per "
                                "packet on the steady-state path (expected 0)")
            else:
                print(f"  ok        {name}: 0 allocs/packet")

    if failures:
        print("\nbench_regression: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench_regression: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
