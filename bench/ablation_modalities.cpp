// Ablation: what each measurement modality contributes to localization.
//
// Runs the office deployment through four back ends fed by the same
// per-AP direct-path observations:
//   AoA+RSSI    — SpotFi's Eq. 9 (the shipped localizer)
//   AoA only    — likelihood-weighted bearing triangulation
//   RSSI only   — RADAR-style trilateration with the true path-loss model
//   unweighted  — Eq. 9 with all likelihoods forced to 1 (ablates the
//                 paper's confidence weighting)
//
//   ./ablation_modalities [seed]
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "localize/baselines.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 15;
  const ExperimentRunner runner(link, office_deployment(), config);

  std::vector<double> full, aoa_only, rssi_only, unweighted;
  Rng rng(seed);
  for (const Vec2 target : runner.deployment().targets) {
    const TargetRun run = runner.run_target(target, rng);
    full.push_back(run.error_m);

    std::vector<ApObservation> obs;
    for (const auto& r : run.round.ap_results) obs.push_back(r.observation);

    try {
      aoa_only.push_back(distance(triangulate_aoa(obs), target));
    } catch (const NumericalError&) {
      aoa_only.push_back(20.0);  // degenerate geometry: count as a miss
    }

    RssiTrilaterationConfig tri;
    tri.path_loss.p0_dbm = -32.0;  // TX power + reference gain at 1 m
    tri.path_loss.exponent = 2.0;
    rssi_only.push_back(distance(trilaterate_rssi(obs, tri), target));

    auto flat = obs;
    for (auto& o : flat) o.likelihood = 1.0;
    LocalizerConfig cfg = runner.config().server.localizer;
    const SpotFiLocalizer localizer(cfg);
    unweighted.push_back(distance(localizer.locate(flat).position, target));
  }

  std::printf("# Localization modality ablation, office deployment, "
              "seed=%llu\n",
              static_cast<unsigned long long>(seed));
  bench::print_summary("AoA+RSSI weighted (Eq.9)", full);
  bench::print_summary("AoA+RSSI unweighted", unweighted);
  bench::print_summary("AoA only (triangulation)", aoa_only);
  bench::print_summary("RSSI only (trilateration)", rssi_only);
  std::printf("\n");
  const std::vector<std::string> names{"Eq9", "unweighted", "AoA", "RSSI"};
  const std::vector<std::vector<double>> series{full, unweighted, aoa_only,
                                                rssi_only};
  bench::print_cdf_table(names, series);
  std::printf("\n# expected: Eq.9 <= unweighted < AoA-only << RSSI-only "
              "(paper Sec. 2: RSSI systems see 2-4 m)\n");
  return 0;
}
