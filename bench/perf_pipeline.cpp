// End-to-end pipeline performance: per-AP packet-group processing
// (Algorithm 2 lines 2-10), the localization solve (line 12), and one
// full 6-AP localization round — the numbers behind "SpotFi is
// lightweight" (Sec. 4.4.4 wants small packet counts partly for latency).
//
// The group/round benches are parameterized by thread count (the bench
// arg, shown as e.g. BM_FullRound6Aps/threads:4): thread counts are set
// explicitly per benchmark here, so run these WITHOUT SPOTFI_THREADS in
// the environment — the env var would override every parameterization
// with one global value.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/parallel.hpp"
#include "core/session_manager.hpp"
#include "pipeline/stages.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

struct Fixture {
  LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentRunner runner{link, office_deployment(), make_config()};
  std::vector<ApCapture> captures;
  std::vector<ApObservation> observations;

  static ExperimentConfig make_config() {
    ExperimentConfig config;
    config.packets_per_group = 10;
    return config;
  }

  Fixture() {
    Rng rng(3);
    captures = runner.simulate_captures({6.0, 3.5}, rng);
    const SpotFiServer server(link, runner.config().server);
    const auto round = server.localize(captures, rng);
    for (const auto& r : round.ap_results) {
      observations.push_back(r.observation);
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_ApProcessorGroup10(benchmark::State& state) {
  auto& f = fixture();
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  ApProcessorConfig cfg;
  cfg.pool = threads > 1 ? &pool : nullptr;
  const ApProcessor processor(f.link, f.captures[0].pose, cfg);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor.process(f.captures[0].packets, rng));
  }
}
BENCHMARK(BM_ApProcessorGroup10)->ArgName("threads")->Arg(1)->Arg(4);

void BM_LocalizeSolve(benchmark::State& state) {
  auto& f = fixture();
  LocalizerConfig cfg;
  cfg.area_min = f.runner.deployment().area_min;
  cfg.area_max = f.runner.deployment().area_max;
  const SpotFiLocalizer localizer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(localizer.locate(f.observations));
  }
}
BENCHMARK(BM_LocalizeSolve);

void BM_FullRound6Aps(benchmark::State& state) {
  auto& f = fixture();
  ServerConfig cfg = f.runner.config().server;
  cfg.num_threads = static_cast<std::size_t>(state.range(0));
  const SpotFiServer server(f.link, cfg);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.localize(f.captures, rng));
  }
}
BENCHMARK(BM_FullRound6Aps)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(6);

// --- stage-level benches (DESIGN.md §15) -------------------------------
// One number per pipeline stage, through the same Stage::run_into
// boundary the pipeline drives, so the eig-vs-sweep cost split the
// ROADMAP items 1-2 target is visible stage by stage — not just in the
// end-to-end group numbers above.

void BM_Stage_Sanitize(benchmark::State& state) {
  auto& f = fixture();
  const SanitizeStage sanitize(f.link, true);
  const CsiPacket& packet = f.captures[0].packets[0];
  Workspace ws;
  StageContext ctx;
  ctx.ws = &ws;
  for (auto _ : state) {
    Workspace::Frame frame(ws);
    benchmark::DoNotOptimize(
        sanitize.run_into(ctx, ConstCMatrixView(packet.csi)));
  }
}
BENCHMARK(BM_Stage_Sanitize);

void BM_Stage_Subspace(benchmark::State& state) {
  // Smoothing + eigendecomposition + noise-subspace split (smoothing is
  // folded into the subspace phase, matching the telemetry buckets).
  auto& f = fixture();
  const JointMusicEstimator est(f.link, JointMusicConfig{});
  const SmoothingStage smooth(est);
  const SubspaceStage subspace(est);
  const CsiPacket& packet = f.captures[0].packets[0];
  Workspace ws;
  StageContext ctx;
  ctx.ws = &ws;
  for (auto _ : state) {
    Workspace::Frame frame(ws);
    const CMatrixView x = smooth.run_into(ctx, ConstCMatrixView(packet.csi));
    benchmark::DoNotOptimize(subspace.run_into(ctx, ConstCMatrixView(x)));
  }
}
BENCHMARK(BM_Stage_Subspace);

void BM_Stage_Spectrum(benchmark::State& state) {
  // The grid sweep alone: subspaces are computed once into an enclosing
  // frame, each iteration sweeps the pseudospectrum and extracts peaks.
  auto& f = fixture();
  const JointMusicEstimator est(f.link, JointMusicConfig{});
  const SmoothingStage smooth(est);
  const SubspaceStage subspace(est);
  const SpectrumStage spectrum(est);
  const CsiPacket& packet = f.captures[0].packets[0];
  Workspace ws;
  StageContext ctx;
  ctx.ws = &ws;
  Workspace::Frame outer(ws);
  const CMatrixView x = smooth.run_into(ctx, ConstCMatrixView(packet.csi));
  const SubspacesRef sub = subspace.run_into(ctx, ConstCMatrixView(x));
  std::vector<PathEstimate> out(est.config().max_paths);
  for (auto _ : state) {
    Workspace::Frame frame(ws);
    benchmark::DoNotOptimize(spectrum.run_into(ctx, SpectrumIn{sub, out}));
  }
}
BENCHMARK(BM_Stage_Spectrum);

void BM_Stage_Cluster(benchmark::State& state) {
  // Clustering + direct-path selection over one group's pooled
  // estimates (the kCluster telemetry bucket end to end).
  auto& f = fixture();
  const JointMusicEstimator est(f.link, JointMusicConfig{});
  const std::size_t max_paths = est.config().max_paths;
  Workspace ws;
  std::vector<PathEstimate> pooled;
  {
    Workspace::Frame frame(ws);
    std::vector<PathEstimate> slots(max_paths);
    for (const auto& packet : f.captures[0].packets) {
      const std::size_t n =
          est.estimate_into(ConstCMatrixView(packet.csi), ws, slots);
      pooled.insert(pooled.end(), slots.begin(),
                    slots.begin() + static_cast<std::ptrdiff_t>(n));
    }
  }
  const ClusterStage cluster(f.link, DirectPathConfig{});
  const DirectPathStage direct_path;
  Rng rng(21);
  StageContext ctx;
  ctx.ws = &ws;
  ctx.rng = &rng;
  const std::size_t n_packets = f.captures[0].packets.size();
  for (auto _ : state) {
    Workspace::Frame frame(ws);
    const auto clusters =
        cluster.run_into(ctx, ClusterIn{pooled, n_packets});
    benchmark::DoNotOptimize(direct_path.run_into(
        ctx, DirectPathIn{clusters, &f.captures[0].pose, -40.0}));
  }
}
BENCHMARK(BM_Stage_Cluster);

void BM_Stage_Localize(benchmark::State& state) {
  auto& f = fixture();
  LocalizerConfig cfg;
  cfg.area_min = f.runner.deployment().area_min;
  cfg.area_max = f.runner.deployment().area_max;
  const SpotFiLocalizer localizer(cfg);
  const LocalizeStage localize(localizer);
  Workspace ws;
  StageContext ctx;
  ctx.ws = &ws;
  for (auto _ : state) {
    Workspace::Frame frame(ws);
    benchmark::DoNotOptimize(localize.run_into(
        ctx, std::span<const ApObservation>(f.observations)));
  }
}
BENCHMARK(BM_Stage_Localize);

// --- cross-session batch scheduling ------------------------------------

/// pump_all() over N tenants with one full group queued each: every
/// iteration gathers N prepared rounds into one shared batch (steering
/// tables interned process-wide, arenas reused across tenants) and
/// executes it on the manager's pool. Same workload shape as
/// perf_sessions' BM_SessionRounds (3 APs, group of 2, ESPRIT rung), so
/// the two series read side by side as batched vs per-session pumping.
void BM_BatchedPump(benchmark::State& state) {
  const auto n_sessions = static_cast<std::size_t>(state.range(0));
  auto& f = fixture();
  constexpr std::size_t kGroup = 2;
  constexpr std::size_t kAps = 3;

  SessionManager manager(f.link);
  std::vector<SessionId> ids;
  ids.reserve(n_sessions);
  for (std::size_t s = 0; s < n_sessions; ++s) {
    SessionConfig cfg;
    cfg.streaming.group_size = kGroup;
    cfg.streaming.server.localizer.area_min = f.runner.deployment().area_min;
    cfg.streaming.server.localizer.area_max = f.runner.deployment().area_max;
    cfg.streaming.server.ap.fallback.entry_stage =
        entry_stage_for(ShedLevel::kEsprit);
    for (std::size_t a = 0; a < kAps; ++a) {
      cfg.aps.push_back(f.captures[a].pose);
    }
    cfg.overload.queue_capacity = 2 * kAps * kGroup;
    cfg.seed = 100 + s;
    ids.push_back(manager.open_session(cfg));
  }

  std::size_t rounds = 0;
  for (auto _ : state) {
    for (const SessionId id : ids) {
      for (std::size_t a = 0; a < kAps; ++a) {
        for (std::size_t p = 0; p < kGroup; ++p) {
          benchmark::DoNotOptimize(
              manager.offer(id, a, f.captures[a].packets[p]));
        }
      }
    }
    benchmark::DoNotOptimize(manager.pump_all());
    rounds += n_sessions;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(rounds));
  state.counters["sessions"] =
      benchmark::Counter(static_cast<double>(n_sessions));
}
BENCHMARK(BM_BatchedPump)
    ->ArgName("sessions")
    ->Arg(10)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_ChannelSynthesis(benchmark::State& state) {
  auto& f = fixture();
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.runner.simulate_captures({6.0, 3.5}, rng));
  }
}
BENCHMARK(BM_ChannelSynthesis);

}  // namespace

BENCHMARK_MAIN();
