// End-to-end pipeline performance: per-AP packet-group processing
// (Algorithm 2 lines 2-10), the localization solve (line 12), and one
// full 6-AP localization round — the numbers behind "SpotFi is
// lightweight" (Sec. 4.4.4 wants small packet counts partly for latency).
//
// The group/round benches are parameterized by thread count (the bench
// arg, shown as e.g. BM_FullRound6Aps/threads:4): thread counts are set
// explicitly per benchmark here, so run these WITHOUT SPOTFI_THREADS in
// the environment — the env var would override every parameterization
// with one global value.
#include <benchmark/benchmark.h>

#include "common/parallel.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

struct Fixture {
  LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentRunner runner{link, office_deployment(), make_config()};
  std::vector<ApCapture> captures;
  std::vector<ApObservation> observations;

  static ExperimentConfig make_config() {
    ExperimentConfig config;
    config.packets_per_group = 10;
    return config;
  }

  Fixture() {
    Rng rng(3);
    captures = runner.simulate_captures({6.0, 3.5}, rng);
    const SpotFiServer server(link, runner.config().server);
    const auto round = server.localize(captures, rng);
    for (const auto& r : round.ap_results) {
      observations.push_back(r.observation);
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_ApProcessorGroup10(benchmark::State& state) {
  auto& f = fixture();
  const auto threads = static_cast<std::size_t>(state.range(0));
  ThreadPool pool(threads);
  ApProcessorConfig cfg;
  cfg.pool = threads > 1 ? &pool : nullptr;
  const ApProcessor processor(f.link, f.captures[0].pose, cfg);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor.process(f.captures[0].packets, rng));
  }
}
BENCHMARK(BM_ApProcessorGroup10)->ArgName("threads")->Arg(1)->Arg(4);

void BM_LocalizeSolve(benchmark::State& state) {
  auto& f = fixture();
  LocalizerConfig cfg;
  cfg.area_min = f.runner.deployment().area_min;
  cfg.area_max = f.runner.deployment().area_max;
  const SpotFiLocalizer localizer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(localizer.locate(f.observations));
  }
}
BENCHMARK(BM_LocalizeSolve);

void BM_FullRound6Aps(benchmark::State& state) {
  auto& f = fixture();
  ServerConfig cfg = f.runner.config().server;
  cfg.num_threads = static_cast<std::size_t>(state.range(0));
  const SpotFiServer server(f.link, cfg);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server.localize(f.captures, rng));
  }
}
BENCHMARK(BM_FullRound6Aps)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(6);

void BM_ChannelSynthesis(benchmark::State& state) {
  auto& f = fixture();
  Rng rng(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.runner.simulate_captures({6.0, 3.5}, rng));
  }
}
BENCHMARK(BM_ChannelSynthesis);

}  // namespace

BENCHMARK_MAIN();
