// Ablation: smoothing subarray geometry.
//
// DESIGN.md calls out the 15-subcarrier x 2-antenna subarray of Fig. 4 as
// a design choice; this bench sweeps alternative subarray shapes and
// reports per-packet AoA accuracy (closest estimate to the ground-truth
// direct path) plus the spectrum evaluation cost driver (rows x columns).
//
//   ./ablation_smoothing [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/angles.hpp"
#include "csi/sanitize.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 4;
  const ExperimentRunner runner(link, office_deployment(), config);

  std::printf("# Smoothing subarray ablation, office deployment, "
              "seed=%llu\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-12s %6s %6s   %12s %12s\n", "subarray", "rows", "cols",
              "median[deg]", "p80[deg]");

  struct Shape {
    std::size_t sub_len;
    std::size_t ant_len;
  };
  for (const Shape shape : {Shape{15, 2}, Shape{10, 2}, Shape{20, 2},
                            Shape{25, 2}, Shape{15, 3}, Shape{30, 2}}) {
    JointMusicConfig music;
    music.smoothing.sub_len = shape.sub_len;
    music.smoothing.ant_len = shape.ant_len;
    const JointMusicEstimator estimator(link, music);

    std::vector<double> errors;
    Rng rng(seed);
    for (const Vec2 target : runner.deployment().targets) {
      const auto captures = runner.simulate_captures(target, rng);
      const auto truth = runner.ground_truth(target);
      for (std::size_t a = 0; a < captures.size(); ++a) {
        for (const auto& packet : captures[a].packets) {
          const CMatrix clean = sanitize_tof(packet.csi, link).csi;
          double best = 180.0;
          for (const auto& est : estimator.estimate(clean)) {
            best = std::min(best, std::abs(rad_to_deg(est.aoa_rad) -
                                           rad_to_deg(
                                               truth[a].direct_aoa_rad)));
          }
          errors.push_back(best);
        }
      }
    }
    char label[32];
    std::snprintf(label, sizeof label, "%zux%zu", shape.sub_len,
                  shape.ant_len);
    std::printf("%-12s %6zu %6zu   %12.2f %12.2f\n", label,
                smoothed_rows(music.smoothing),
                smoothed_cols(link.n_antennas, link.n_subcarriers,
                              music.smoothing),
                median(errors), percentile(errors, 80.0));
  }
  std::printf("\n# the paper's 15x2 shape balances virtual-sensor count "
              "against measurement columns\n");
  return 0;
}
