// Diagnostic (not a paper figure): per-target breakdown of the office
// run — localization error, per-AP selection error and likelihood, and
// the objective value at the truth vs at the estimate. Separates
// front-end failures (bad AoA picks) from back-end failures (solver
// landing in the wrong basin despite good picks).
//
//   ./diag_office [deployment: office|nlos|corridor] [seed] [packets]
#include <cmath>
#include <cstdio>
#include <string>
#include <cstdlib>

#include "common/angles.hpp"
#include "localize/spotfi_localizer.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::string which = argc >= 2 ? argv[1] : "office";
  const std::uint64_t seed =
      argc >= 3 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;
  ExperimentConfig config;
  config.packets_per_group =
      argc >= 4 ? static_cast<std::size_t>(std::atoi(argv[3])) : 15;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const Deployment deployment = which == "corridor" ? corridor_deployment()
                                : which == "nlos"   ? high_nlos_deployment()
                                                    : office_deployment();
  const ExperimentRunner runner(link, deployment, config);

  Rng rng(seed);
  std::printf("%-14s %7s | per-AP selection error [deg] (likelihood)\n",
              "target", "err[m]");
  for (const Vec2 target : runner.deployment().targets) {
    const TargetRun run = runner.run_target(target, rng);
    std::printf("(%5.1f,%5.1f) %7.2f |", target.x, target.y, run.error_m);
    for (std::size_t a = 0; a < run.round.ap_results.size(); ++a) {
      const auto& obs = run.round.ap_results[a].observation;
      const double sel_err = std::abs(
          rad_to_deg(obs.direct_aoa_rad) -
          rad_to_deg(run.ap_truth[a].direct_aoa_rad));
      std::printf(" %5.1f(%6.1f)", sel_err, obs.likelihood);
    }
    // Objective at truth vs estimate with the fitted path-loss model.
    const SpotFiLocalizer localizer(runner.config().server.localizer);
    std::vector<ApObservation> obs;
    for (const auto& r : run.round.ap_results) obs.push_back(r.observation);
    const double cost_truth =
        localizer.objective(obs, target, run.round.location.path_loss);
    std::printf("  J(est)=%7.3f J(truth)=%7.3f\n", run.round.location.cost,
                cost_truth);
  }
  return 0;
}
