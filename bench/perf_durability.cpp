// Durability-layer benchmarks (DESIGN.md §14): steady-state journal
// appends on the accepted-packet path, plus the zero-allocation
// contract on that path.
//
// BM_JournalAppend_Steady is the allocation gate: once the WalWriter's
// reused record buffer has reached its working size, staging a packet
// record (encode straight into the buffer) and committing it (frame,
// checksum, write) must not touch the heap — the durable sink sits on
// the ingest hot path and must not hand the allocator a per-packet
// cost. bench_regression.py fails the build if the allocs_per_packet
// counter ever reads nonzero.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "durability/wal.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_allocated_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// Same spurious-warning suppression as perf_memory.cpp: our operator
// new hands out malloc'd memory, so free() is the matching deallocator.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace spotfi;

/// An Intel 5300-shaped packet: 3 antennas x 30 subcarriers, the wire
/// payload every accepted ingest packet journals.
CsiPacket bench_packet() {
  CsiPacket p;
  p.csi = CMatrix(3, 30);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 30; ++j) {
      p.csi(i, j) = cplx(static_cast<double>(i + 1), static_cast<double>(j));
    }
  }
  p.rssi_dbm = -42.0;
  p.timestamp_s = 0.125;
  return p;
}

/// One packet record per iteration through the staged hot path: encode
/// into the writer's reused buffer, frame, checksum, write. The file
/// grows, but the in-memory footprint is the one preallocated buffer.
void BM_JournalAppend_Steady(benchmark::State& state) {
  char tmpl[] = "/tmp/spotfi-bench-wal-XXXXXX";
  const char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    state.SkipWithError("mkdtemp failed");
    return;
  }
  const std::string path = std::string(dir) + "/journal.wal";
  {
    WalWriter writer(path);
    if (!writer.ok()) {
      state.SkipWithError("journal open failed");
    } else {
      const CsiPacket packet = bench_packet();
      std::uint64_t index = 0;

      // Warm up: grow the record buffer to its working size.
      for (int i = 0; i < 64; ++i) {
        ++index;
        ByteWriter w = writer.stage();
        encode_wal_packet(w, /*session=*/1, index, /*ap_id=*/2,
                          /*receiver_id=*/7, /*seq=*/index, packet);
        (void)writer.commit_staged(WalRecordType::kPacket);
      }

      const std::size_t allocs = g_allocations.load();
      const std::size_t bytes = g_allocated_bytes.load();
      for (auto _ : state) {
        ++index;
        ByteWriter w = writer.stage();
        encode_wal_packet(w, /*session=*/1, index, /*ap_id=*/2,
                          /*receiver_id=*/7, /*seq=*/index, packet);
        benchmark::DoNotOptimize(writer.commit_staged(WalRecordType::kPacket));
      }
      // Snapshot both deltas before touching the counter map — inserting
      // the first counter allocates and would pollute the second reading.
      const double d_allocs =
          static_cast<double>(g_allocations.load() - allocs);
      const double d_bytes =
          static_cast<double>(g_allocated_bytes.load() - bytes);
      const double n = static_cast<double>(state.iterations());
      state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
      state.counters["allocs_per_packet"] = benchmark::Counter(d_allocs / n);
      state.counters["bytes_per_packet"] = benchmark::Counter(d_bytes / n);
      state.counters["journal_bytes"] =
          benchmark::Counter(static_cast<double>(writer.committed_bytes()));
    }
  }
  std::remove(path.c_str());
  rmdir(dir);
}
BENCHMARK(BM_JournalAppend_Steady);

}  // namespace

BENCHMARK_MAIN();
