// Figure 5(c): ToF-AoA clusters over a long packet trace.
//
// Runs SpotFi's super-resolution on 170 packets from one link and prints
// the cluster table: the direct path forms a tight, populous cluster while
// reflected paths spread out (their per-packet estimates vary). Also
// reports the sanitization ablation: without Algorithm 1, per-packet STO
// scatters the ToF of *every* cluster, destroying the structure.
//
//   ./fig5c_clusters [seed] [n_packets]
#include <cstdio>
#include <cstdlib>

#include "common/angles.hpp"
#include "core/ap_processor.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

void print_clusters(const char* label, const ApResult& result) {
  std::printf("%s\n", label);
  std::printf("  %-10s %-10s %-7s %-11s %-11s %-12s\n", "AoA [deg]",
              "ToF [ns]", "count", "sigma_aoa", "sigma_tof", "likelihood");
  for (const auto& c : result.clusters) {
    std::printf("  %10.1f %10.1f %7zu %11.4f %11.4f %12.4g\n",
                rad_to_deg(c.mean_aoa_rad), c.mean_tof_s * 1e9, c.count,
                c.sigma_aoa, c.sigma_tof, c.likelihood);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const std::size_t n_packets =
      argc >= 3 ? static_cast<std::size_t>(std::atoi(argv[2])) : 170;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = n_packets;
  const ExperimentRunner runner(link, office_deployment(), config);
  const Vec2 target{6.0, 3.5};
  const ArrayPose pose = runner.deployment().aps[0];

  std::printf("# Fig 5(c): ToF-AoA clusters over %zu packets, link "
              "(6.0, 3.5) -> AP 0, seed=%llu\n",
              n_packets, static_cast<unsigned long long>(seed));
  std::printf("true direct AoA: %.1f deg\n\n",
              rad_to_deg(pose.aoa_of(target)));

  Rng rng(seed);
  const auto captures = runner.simulate_captures(target, rng);

  ApProcessorConfig with_sanitize;
  const ApProcessor processor(link, pose, with_sanitize);
  const ApResult sanitized = processor.process(captures[0].packets, rng);
  print_clusters("with Algorithm 1 (sanitized):", sanitized);
  std::printf("  -> direct pick: %.1f deg\n\n",
              rad_to_deg(sanitized.observation.direct_aoa_rad));

  ApProcessorConfig no_sanitize;
  no_sanitize.sanitize = false;
  const ApProcessor raw_processor(link, pose, no_sanitize);
  const ApResult raw = raw_processor.process(captures[0].packets, rng);
  print_clusters("ablation, without Algorithm 1 (raw phase):", raw);
  std::printf("  -> direct pick: %.1f deg\n",
              rad_to_deg(raw.observation.direct_aoa_rad));

  std::printf("\n# paper: direct path forms the tightest cluster; "
              "sanitization removes packet-to-packet ToF scatter\n");
  return 0;
}
