// Memory-traffic benchmarks for the zero-allocation hot path (DESIGN.md
// §11): heap allocations and bytes per packet through the estimation
// stage, on the value calling convention (thin wrappers that allocate
// results around the shared view kernels) and on the arena path. The
// arena numbers must read 0 alloc/packet in steady state — the same
// contract tests/alloc_test.cpp enforces, measured here so the bench
// JSON trails it across PRs.
//
// Counters live in global operator new/delete overrides local to this
// binary; google-benchmark counters report allocations and bytes per
// iteration (one iteration = one packet).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "common/workspace.hpp"
#include "core/ap_processor.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_allocated_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// The replacement operator new above hands out malloc'd memory, so
// free() here is the matching deallocator; GCC can't see that pairing
// once the benchmark headers inline these and warns spuriously.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace spotfi;

CsiPacket test_packet() {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ImpairmentConfig imp;
  const CsiSynthesizer synth(link, imp);
  std::vector<PathComponent> paths;
  const double aoas[] = {-50.0, -10.0, 15.0, 45.0, 70.0};
  const double tofs[] = {20e-9, 60e-9, 110e-9, 170e-9, 240e-9};
  for (int l = 0; l < 5; ++l) {
    PathComponent p;
    p.aoa_rad = deg_to_rad(aoas[l]);
    p.tof_s = tofs[l];
    p.gain_db = -50.0 - 2.0 * l;
    paths.push_back(p);
  }
  Rng rng(7);
  CsiPacket packet;
  packet.csi = synth.synthesize(paths, 0.0, rng).csi;
  packet.rssi_dbm = -48.0;
  return packet;
}

void report_memory(benchmark::State& state, std::size_t allocs_before,
                   std::size_t bytes_before) {
  const double n = static_cast<double>(state.iterations());
  state.counters["allocs_per_packet"] = benchmark::Counter(
      static_cast<double>(g_allocations.load() - allocs_before) / n);
  state.counters["bytes_per_packet"] = benchmark::Counter(
      static_cast<double>(g_allocated_bytes.load() - bytes_before) / n);
}

/// The per-packet estimation stage on the value calling convention:
/// the ergonomic wrappers allocate owning results around the same view
/// kernels the arena path runs (a handful of allocations per packet —
/// down from hundreds before the refactor, but not zero).
void BM_PacketEstimate_ValueApi(benchmark::State& state) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const CsiPacket packet = test_packet();
  const JointMusicEstimator music(link, {});
  const std::size_t allocs = g_allocations.load();
  const std::size_t bytes = g_allocated_bytes.load();
  for (auto _ : state) {
    const CMatrix csi = std::move(sanitize_tof(packet.csi, link).csi);
    benchmark::DoNotOptimize(music.estimate(csi));
  }
  report_memory(state, allocs, bytes);
}
BENCHMARK(BM_PacketEstimate_ValueApi);

/// The same stage on the arena path (ApProcessor::estimate_packet):
/// steady state must report 0 allocs/packet and 0 bytes/packet.
void BM_PacketEstimate_Workspace(benchmark::State& state) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const CsiPacket packet = test_packet();
  const ApProcessor processor(link, ArrayPose{{0.0, 0.0}, 0.0}, {});
  Workspace ws;
  std::vector<PathEstimate> out(processor.max_paths());
  // Warm-up: grow, then coalesce to one block.
  benchmark::DoNotOptimize(processor.estimate_packet(packet, ws, out));
  ws.reset();
  benchmark::DoNotOptimize(processor.estimate_packet(packet, ws, out));
  const std::size_t allocs = g_allocations.load();
  const std::size_t bytes = g_allocated_bytes.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor.estimate_packet(packet, ws, out));
  }
  report_memory(state, allocs, bytes);
  state.counters["arena_high_water_bytes"] =
      benchmark::Counter(static_cast<double>(ws.stats().high_water_bytes));
}
BENCHMARK(BM_PacketEstimate_Workspace);

/// Whole packet-group stage (process(): sanitize + estimate + pool +
/// cluster + select) with a warmed arena: allocations here are the
/// per-group constant (slot buffers, result vectors), amortized per
/// packet by the group size.
void BM_GroupProcess_Workspace(benchmark::State& state) {
  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const std::size_t n_packets = static_cast<std::size_t>(state.range(0));
  std::vector<CsiPacket> packets(n_packets, test_packet());
  const ApProcessor processor(link, ArrayPose{{0.0, 0.0}, 0.0}, {});
  Rng rng(3);
  benchmark::DoNotOptimize(processor.process(packets, rng));
  thread_workspace().reset();
  benchmark::DoNotOptimize(processor.process(packets, rng));
  const std::size_t allocs = g_allocations.load();
  const std::size_t bytes = g_allocated_bytes.load();
  for (auto _ : state) {
    benchmark::DoNotOptimize(processor.process(packets, rng));
  }
  const double n =
      static_cast<double>(state.iterations()) * static_cast<double>(n_packets);
  state.counters["allocs_per_packet"] = benchmark::Counter(
      static_cast<double>(g_allocations.load() - allocs) / n);
  state.counters["bytes_per_packet"] = benchmark::Counter(
      static_cast<double>(g_allocated_bytes.load() - bytes) / n);
}
BENCHMARK(BM_GroupProcess_Workspace)->Arg(10)->Arg(40);

}  // namespace

BENCHMARK_MAIN();
