// Figure 5(a)/(b): ToF sanitization (Algorithm 1) in action.
//
// Synthesizes two packets from the same link with different sampling time
// offsets, prints the unwrapped CSI phase of antenna 1 before (Fig. 5(a),
// phases diverge: different STO slopes) and after (Fig. 5(b), the
// modified phases coincide) sanitization, and reports the RMS difference.
//
//   ./fig5_sanitization [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "csi/phase.hpp"
#include "csi/sanitize.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const Deployment deployment = office_deployment();
  MultipathConfig mp_cfg;
  mp_cfg.carrier_hz = link.carrier_hz;
  const auto paths = enumerate_paths(deployment.plan, deployment.scatterers,
                                     deployment.aps[0], {6.0, 3.5}, mp_cfg);

  // Two packets with very different STOs; no common-phase randomness so
  // the offset beta matches too and the curves can be compared directly.
  auto make_packet = [&](double sto, std::uint64_t s) {
    ImpairmentConfig imp;
    imp.sto_base_s = sto;
    imp.sto_jitter_s = 0.0;
    imp.random_common_phase = false;
    imp.indirect_phase_jitter_rad = 0.0;
    imp.indirect_gain_jitter_db = 0.0;
    imp.indirect_tof_jitter_s = 0.0;
    imp.indirect_aoa_jitter_rad = 0.0;
    const CsiSynthesizer synth(link, imp);
    Rng rng(s);
    return synth.synthesize(paths, 0.0, rng);
  };
  const CsiPacket pkt1 = make_packet(40e-9, seed);
  const CsiPacket pkt2 = make_packet(170e-9, seed + 1);

  const RMatrix raw1 = unwrapped_phase(pkt1.csi);
  const RMatrix raw2 = unwrapped_phase(pkt2.csi);
  const RMatrix mod1 = unwrapped_phase(sanitize_tof(pkt1.csi, link).csi);
  const RMatrix mod2 = unwrapped_phase(sanitize_tof(pkt2.csi, link).csi);

  std::printf("# Fig 5(a)/(b): unwrapped CSI phase (antenna 1), packets "
              "with STO 40 ns vs 170 ns, seed=%llu\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-5s %12s %12s | %12s %12s\n", "sub", "raw pkt1", "raw pkt2",
              "sanit pkt1", "sanit pkt2");
  for (std::size_t n = 0; n < link.n_subcarriers; n += 3) {
    std::printf("%-5zu %12.3f %12.3f | %12.3f %12.3f\n", n, raw1(0, n),
                raw2(0, n), mod1(0, n), mod2(0, n));
  }

  auto rms_diff = [&](const RMatrix& a, const RMatrix& b) {
    // Compare modulo a constant offset (carrier phase is arbitrary).
    double mean = 0.0;
    for (std::size_t m = 0; m < a.rows(); ++m) {
      for (std::size_t n = 0; n < a.cols(); ++n) mean += a(m, n) - b(m, n);
    }
    mean /= static_cast<double>(a.size());
    double rss = 0.0;
    for (std::size_t m = 0; m < a.rows(); ++m) {
      for (std::size_t n = 0; n < a.cols(); ++n) {
        const double d = a(m, n) - b(m, n) - mean;
        rss += d * d;
      }
    }
    return std::sqrt(rss / static_cast<double>(a.size()));
  };
  std::printf("\nRMS phase difference between packets (offset removed):\n");
  std::printf("  raw       : %8.3f rad\n", rms_diff(raw1, raw2));
  std::printf("  sanitized : %8.3f rad\n", rms_diff(mod1, mod2));
  std::printf("\n# paper: sanitized phase responses coincide across "
              "packets despite different STOs\n");
  return 0;
}
