// Ablation: analytic CSI model vs the full OFDM waveform chain.
//
// Runs the same office targets with CSI produced (a) directly from the
// Eq. 1-7 signal model and (b) by transmitting LTF symbols through the
// multipath channel and running packet detection + channel estimation
// (phy/). If the analytic model is faithful, localization accuracy must
// agree — this is the system-level counterpart of the per-packet fidelity
// test in tests/phy_test.cpp.
//
//   ./ablation_csi_source [seed] [packets]
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const std::size_t packets =
      argc >= 3 ? static_cast<std::size_t>(std::atoi(argv[2])) : 10;

  const LinkConfig link = LinkConfig::intel5300_40mhz();

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  for (const bool use_phy : {false, true}) {
    ExperimentConfig config;
    config.packets_per_group = packets;
    config.use_phy_waveform = use_phy;
    const ExperimentRunner runner(link, office_deployment(), config);
    std::vector<double> errors;
    Rng rng(seed);
    for (const Vec2 target : runner.deployment().targets) {
      errors.push_back(runner.run_target(target, rng).error_m);
    }
    const char* name = use_phy ? "waveform chain" : "analytic model";
    bench::print_summary(name, errors);
    names.push_back(use_phy ? "waveform" : "analytic");
    series.push_back(std::move(errors));
  }
  std::printf("\n");
  bench::print_cdf_table(names, series);
  std::printf("\n# agreement between the two sources validates the "
              "analytic CSI model end-to-end\n");
  return 0;
}
