// Transport-layer benchmarks (DESIGN.md §13): steady-state frame
// delivery over an established connection, plus the zero-allocation
// contract on that path.
//
// BM_TransportDeliver_Steady is the allocation gate: once the
// connection is established and the link/window/reorder buffers have
// reached steady state, pushing a frame through send → wire → deliver →
// ack → window advance must not touch the heap. Slots recycle their
// payload storage, ack frames carry no payload, and the link's in-flight
// heap is preallocated. bench_regression.py fails the build if the
// allocs_per_packet counter ever reads nonzero.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "transport/transport.hpp"

namespace {

std::atomic<std::size_t> g_allocations{0};
std::atomic<std::size_t> g_allocated_bytes{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  g_allocated_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// Same spurious-warning suppression as perf_memory.cpp: our operator
// new hands out malloc'd memory, so free() is the matching deallocator.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

namespace {

using namespace spotfi;

/// One frame per iteration over a perfect link: send, tick both ends,
/// collect the ack. An empty CsiPacket carries no heap storage, so the
/// measured loop is pure protocol machinery — framing, checksum, wire
/// queue, reorder window, cumulative ack, send-window advance.
void BM_TransportDeliver_Steady(benchmark::State& state) {
  LinkSimulator link(LinkFaultModel{});
  TransportConfig cfg;
  cfg.timer_jitter_frac = 0.0;
  TransportSender sender(link, cfg);
  std::uint64_t delivered = 0;
  TransportReceiver receiver(
      link,
      [&delivered](std::size_t /*ap_id*/, CsiPacket& /*packet*/) {
        ++delivered;
        return true;
      },
      cfg);

  // Warm up: establish the connection and push enough frames that every
  // preallocated buffer has reached its steady footprint.
  double t = 0.0;
  const double dt = 1e-4;
  for (int i = 0; i < 256; ++i, t += dt) {
    CsiPacket p;
    (void)sender.send(0, p, t);
    sender.tick(t);
    receiver.tick(t);
  }

  const std::size_t allocs = g_allocations.load();
  const std::size_t bytes = g_allocated_bytes.load();
  for (auto _ : state) {
    CsiPacket p;
    benchmark::DoNotOptimize(sender.send(0, p, t));
    sender.tick(t);
    receiver.tick(t);
    t += dt;
  }
  // Snapshot both deltas before touching the counter map — inserting
  // the first counter allocates and would pollute the second reading.
  const double d_allocs = static_cast<double>(g_allocations.load() - allocs);
  const double d_bytes = static_cast<double>(g_allocated_bytes.load() - bytes);
  const double n = static_cast<double>(state.iterations());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.counters["allocs_per_packet"] = benchmark::Counter(d_allocs / n);
  state.counters["bytes_per_packet"] = benchmark::Counter(d_bytes / n);
  state.counters["delivered"] =
      benchmark::Counter(static_cast<double>(delivered));
}
BENCHMARK(BM_TransportDeliver_Steady);

}  // namespace

BENCHMARK_MAIN();
