// Ablation: 2-D MUSIC grid search vs shift-invariance (ESPRIT/JADE).
//
// Compares the two joint AoA/ToF estimators on identical captures:
// per-packet direct-path AoA accuracy (closest estimate, LoS links of the
// office deployment) and wall-clock cost per packet. MUSIC is the paper's
// choice; ESPRIT is the search-free alternative from the literature it
// cites [42, 43].
//
//   ./ablation_estimator [seed]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/angles.hpp"
#include "csi/sanitize.hpp"
#include "music/esprit.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 6;
  const ExperimentRunner runner(link, office_deployment(), config);
  const JointMusicEstimator music(link);
  const JointEspritEstimator esprit(link);

  std::vector<double> music_err, esprit_err;
  double music_ns = 0.0, esprit_ns = 0.0;
  std::size_t packets = 0;

  Rng rng(seed);
  for (const Vec2 target : runner.deployment().targets) {
    const auto captures = runner.simulate_captures(target, rng);
    const auto truth = runner.ground_truth(target);
    for (std::size_t a = 0; a < captures.size(); ++a) {
      if (!truth[a].line_of_sight) continue;
      for (const auto& packet : captures[a].packets) {
        const CMatrix clean = sanitize_tof(packet.csi, link).csi;
        ++packets;

        const auto t0 = std::chrono::steady_clock::now();
        const auto me = music.estimate(clean);
        const auto t1 = std::chrono::steady_clock::now();
        const auto ee = esprit.estimate(clean);
        const auto t2 = std::chrono::steady_clock::now();
        music_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
        esprit_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();

        auto closest = [&](const std::vector<PathEstimate>& est) {
          double best = 180.0;
          for (const auto& e : est) {
            best = std::min(best, std::abs(rad_to_deg(e.aoa_rad) -
                                           rad_to_deg(
                                               truth[a].direct_aoa_rad)));
          }
          return best;
        };
        music_err.push_back(closest(me));
        esprit_err.push_back(closest(ee));
      }
    }
  }

  std::printf("# Joint estimator ablation (LoS office links, per packet), "
              "seed=%llu\n",
              static_cast<unsigned long long>(seed));
  bench::print_summary("MUSIC 2-D grid", music_err, "deg");
  bench::print_summary("ESPRIT shift-inv", esprit_err, "deg");
  std::printf("\nper-packet cost: MUSIC %.2f ms, ESPRIT %.3f ms (%zu "
              "packets)\n",
              music_ns / static_cast<double>(packets) / 1e6,
              esprit_ns / static_cast<double>(packets) / 1e6, packets);
  std::printf("\n# both share the eigendecomposition cost; ESPRIT skips "
              "the grid sweep and needs no grid-resolution tuning\n");
  return 0;
}
