// Figure 8(a): CDF of AoA estimation error, LoS vs NLoS, SpotFi's joint
// super-resolution vs the MUSIC-AoA baseline.
//
// As in the paper, the selection process is factored out: for every
// (target, AP) link the error is the distance between the ground-truth
// direct-path AoA and the *closest* estimate the algorithm produced.
// Paper's result: SpotFi median < 5 deg (LoS) and < 10 deg (NLoS);
// MUSIC-AoA 7.4 deg and 15.2 deg.
//
//   ./fig8a_aoa [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "common/angles.hpp"
#include "csi/sanitize.hpp"
#include "testbed/experiment.hpp"

namespace {

using namespace spotfi;

/// Error of the estimate closest to the ground-truth AoA [deg].
double closest_aoa_error_deg(std::span<const PathEstimate> estimates,
                             double truth_rad) {
  double best = 180.0;
  for (const auto& est : estimates) {
    best = std::min(best, std::abs(rad_to_deg(est.aoa_rad) -
                                   rad_to_deg(truth_rad)));
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  ExperimentConfig config;
  config.packets_per_group = 10;
  const ExperimentRunner runner(link, office_deployment(), config);
  const JointMusicEstimator joint(link);
  const MusicAoaEstimator classic(link);

  std::vector<double> spotfi_los, spotfi_nlos, music_los, music_nlos;
  Rng rng(seed);
  for (const Vec2 target : runner.deployment().targets) {
    const auto captures = runner.simulate_captures(target, rng);
    const auto truth = runner.ground_truth(target);
    for (std::size_t a = 0; a < captures.size(); ++a) {
      // Per-packet: the error of the closest estimate among that packet's
      // multipath estimates (selection factored out, paper Sec. 4.4.1).
      for (const auto& packet : captures[a].packets) {
        const CMatrix clean = sanitize_tof(packet.csi, link).csi;
        const double je =
            closest_aoa_error_deg(joint.estimate(clean),
                                  truth[a].direct_aoa_rad);
        const double ce = closest_aoa_error_deg(
            classic.estimate(packet.csi), truth[a].direct_aoa_rad);
        if (truth[a].line_of_sight) {
          spotfi_los.push_back(je);
          music_los.push_back(ce);
        } else {
          spotfi_nlos.push_back(je);
          music_nlos.push_back(ce);
        }
      }
    }
  }

  std::printf("# Fig 8(a): AoA estimation error (closest estimate), office "
              "deployment, seed=%llu\n",
              static_cast<unsigned long long>(seed));
  bench::print_summary("SpotFi LoS", spotfi_los, "deg");
  bench::print_summary("MUSIC-AoA LoS", music_los, "deg");
  bench::print_summary("SpotFi NLoS", spotfi_nlos, "deg");
  bench::print_summary("MUSIC-AoA NLoS", music_nlos, "deg");
  std::printf("\n");
  const std::vector<std::string> names{"SpotFi-LoS", "MUSIC-LoS",
                                       "SpotFi-NLoS", "MUSIC-NLoS"};
  const std::vector<std::vector<double>> series{spotfi_los, music_los,
                                                spotfi_nlos, music_nlos};
  bench::print_cdf_table(names, series);
  std::printf("\n# paper: SpotFi median <5 deg LoS / <10 deg NLoS; "
              "MUSIC-AoA 7.4 / 15.2 deg\n");
  return 0;
}
