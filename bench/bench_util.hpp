// Shared helpers for the figure-reproduction benches: consistent table
// and CDF printing so every bench emits the same row format the paper's
// figures plot.
#pragma once

#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace spotfi::bench {

/// Prints "name: median=… p80=… mean=… n=…" summary row.
inline void print_summary(const std::string& name,
                          std::span<const double> errors,
                          const char* unit = "m") {
  RunningStats s;
  for (double e : errors) s.add(e);
  std::printf("%-28s median=%6.2f %s   p80=%6.2f %s   mean=%6.2f %s   n=%zu\n",
              name.c_str(), median(errors), unit, percentile(errors, 80.0),
              unit, s.mean(), unit, errors.size());
}

/// Prints a CDF as rows "p value" for the given series.
inline void print_cdf(const std::string& name, std::span<const double> errors,
                      std::size_t points = 11) {
  std::printf("CDF %s\n", name.c_str());
  for (const auto& pt : empirical_cdf(errors, points)) {
    std::printf("  %5.2f  %8.3f\n", pt.probability, pt.value);
  }
}

/// Prints several series side by side at shared probability levels —
/// the figure-friendly format.
inline void print_cdf_table(std::span<const std::string> names,
                            std::span<const std::vector<double>> series,
                            std::size_t points = 11) {
  std::printf("%-6s", "p");
  for (const auto& n : names) std::printf("  %14s", n.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < points; ++i) {
    const double p =
        100.0 * static_cast<double>(i) / static_cast<double>(points - 1);
    std::printf("%-6.2f", p / 100.0);
    for (const auto& s : series) std::printf("  %14.3f", percentile(s, p));
    std::printf("\n");
  }
}

}  // namespace spotfi::bench
