// Figure 9(a): localization error vs. WiFi deployment density.
//
// Emulates different AP densities by localizing with random subsets of
// the office APs. Paper's result: medians ~0.6 / 0.8 / 1.9 m with 5 / 4 /
// 3 APs — a big jump from 3 to 4, diminishing returns after.
//
//   ./fig9a_apcount [seed] [subsets_per_count]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>

#include "bench_util.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  const std::size_t subsets_per_count =
      argc >= 3 ? static_cast<std::size_t>(std::atoi(argv[2])) : 3;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const Deployment deployment = office_deployment();
  const std::size_t n_aps = deployment.aps.size();

  std::printf("# Fig 9(a): localization error vs number of APs, office "
              "deployment, %zu random subsets per count, seed=%llu\n",
              subsets_per_count, static_cast<unsigned long long>(seed));

  std::vector<std::string> names;
  std::vector<std::vector<double>> series;
  Rng subset_rng(seed ^ 0xabcdef);
  for (const std::size_t count : {3u, 4u, 5u}) {
    std::vector<double> errors;
    for (std::size_t s = 0; s < subsets_per_count; ++s) {
      // Random AP subset of the requested size.
      std::vector<std::size_t> indices(n_aps);
      std::iota(indices.begin(), indices.end(), std::size_t{0});
      for (std::size_t i = n_aps - 1; i > 0; --i) {
        std::swap(indices[i], indices[subset_rng.uniform_index(i + 1)]);
      }
      indices.resize(count);

      ExperimentConfig config;
      config.packets_per_group = 15;
      config.ap_indices = indices;
      const ExperimentRunner runner(link, deployment, config);
      Rng rng(seed + s);
      for (const Vec2 target : deployment.targets) {
        errors.push_back(runner.run_target(target, rng).error_m);
      }
    }
    bench::print_summary(std::to_string(count) + " APs", errors);
    names.push_back(std::to_string(count) + "APs");
    series.push_back(std::move(errors));
  }
  std::printf("\n");
  bench::print_cdf_table(names, series);
  std::printf("\n# paper: medians ~1.9 / 0.8 / 0.6 m with 3 / 4 / 5 APs\n");
  return 0;
}
