// Figure 7(b): CDF of localization error under high NLoS — targets with
// at most two APs holding a decent direct path.
//
// Paper's result: SpotFi median 1.6 m vs ArrayTrack 3.5 m.
//
//   ./fig7b_nlos [seed] [packets_per_group]
#include <cstdio>
#include <cstdlib>

#include "bench_util.hpp"
#include "testbed/experiment.hpp"

int main(int argc, char** argv) {
  using namespace spotfi;
  const std::uint64_t seed =
      argc >= 2 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 1;
  ExperimentConfig config;
  config.packets_per_group =
      argc >= 3 ? static_cast<std::size_t>(std::atoi(argv[2])) : 40;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const ExperimentRunner runner(link, high_nlos_deployment(), config);

  // Sanity row: how many APs see each target in LoS.
  std::size_t max_los = 0;
  for (const Vec2 t : runner.deployment().targets) {
    max_los = std::max(max_los, count_los_aps(runner.deployment(), t));
  }
  std::printf("# Fig 7(b): high-NLoS deployment — %zu targets (max %zu LoS "
              "APs each), %zu packets/group, seed=%llu\n",
              runner.deployment().targets.size(), max_los,
              config.packets_per_group,
              static_cast<unsigned long long>(seed));

  std::vector<double> spotfi_errors, arraytrack_errors;
  Rng rng(seed);
  for (const Vec2 target : runner.deployment().targets) {
    const TargetRun run = runner.run_target(target, rng);
    spotfi_errors.push_back(run.error_m);
    arraytrack_errors.push_back(
        distance(runner.arraytrack_baseline(run.captures), target));
  }

  bench::print_summary("SpotFi", spotfi_errors);
  bench::print_summary("ArrayTrack(3ant)", arraytrack_errors);
  std::printf("\n");
  const std::vector<std::string> names{"SpotFi", "ArrayTrack"};
  const std::vector<std::vector<double>> series{spotfi_errors,
                                                arraytrack_errors};
  bench::print_cdf_table(names, series);
  std::printf("\n# paper: SpotFi median 1.6 m; ArrayTrack 3.5 m\n");
  return 0;
}
