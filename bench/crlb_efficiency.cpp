// Estimator efficiency vs the Cramér-Rao bound.
//
// Monte-Carlo RMSE of three single-path AoA estimators against the
// unbiased-estimator CRLB across SNR:
//   ML      — brute-force matched-filter grid search on the raw 3x30
//             CSI (profiled amplitude); the CRLB-achieving reference
//   MUSIC   — SpotFi's smoothed joint estimator
//   ESPRIT  — the shift-invariance estimator
//
// Findings this bench documents: ML tracks the bound; smoothed MUSIC
// sits *below* it at high SNR (subarray smoothing is a biased/shrinkage
// estimator — the bound applies to unbiased ones); ESPRIT lies between.
//
//   ./crlb_efficiency [trials] [seed]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "channel/csi_synthesis.hpp"
#include "common/angles.hpp"
#include "music/crlb.hpp"
#include "music/esprit.hpp"
#include "music/estimators.hpp"
#include "music/steering.hpp"

namespace {

using namespace spotfi;

double ml_aoa(const CMatrix& csi, const LinkConfig& link) {
  double best = -1.0;
  double best_aoa = 0.0;
  for (double th = 10.0; th <= 30.0; th += 0.02) {
    for (double tau = 50e-9; tau <= 70e-9; tau += 0.5e-9) {
      const CVector a = joint_steering(deg_to_rad(th), tau, 3, 30, link);
      cplx acc{};
      std::size_t k = 0;
      for (std::size_t m = 0; m < 3; ++m) {
        for (std::size_t n = 0; n < 30; ++n, ++k) {
          acc += std::conj(a[k]) * csi(m, n);
        }
      }
      if (std::norm(acc) > best) {
        best = std::norm(acc);
        best_aoa = th;
      }
    }
  }
  return deg_to_rad(best_aoa);
}

}  // namespace

int main(int argc, char** argv) {
  const int trials = argc >= 2 ? std::atoi(argv[1]) : 25;
  const std::uint64_t seed =
      argc >= 3 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 1;

  const LinkConfig link = LinkConfig::intel5300_40mhz();
  const double true_aoa = deg_to_rad(20.0);
  const double true_tof = 60e-9;
  const JointMusicEstimator music(link);
  const JointEspritEstimator esprit(link);

  std::printf("# single-path AoA RMSE [deg] vs CRLB, %d trials/point, "
              "seed=%llu\n",
              trials, static_cast<unsigned long long>(seed));
  std::printf("%8s %10s %10s %10s %10s\n", "SNR[dB]", "CRLB", "ML", "MUSIC",
              "ESPRIT");
  for (const double snr_db : {5.0, 15.0, 25.0, 35.0}) {
    ImpairmentConfig imp;
    imp.sto_base_s = 0.0;
    imp.sto_jitter_s = 0.0;
    imp.random_common_phase = false;
    imp.quantize_8bit = false;
    imp.max_snr_db = 200.0;
    imp.noise_floor_dbm = -92.0;
    PathComponent p;
    p.aoa_rad = true_aoa;
    p.tof_s = true_tof;
    p.gain_db = -92.0 + snr_db - imp.tx_power_dbm;
    p.is_direct = true;
    const CsiSynthesizer synth(link, imp);

    Rng rng(seed);
    double se_ml = 0.0, se_music = 0.0, se_esprit = 0.0;
    int n_music = 0, n_esprit = 0;
    for (int t = 0; t < trials; ++t) {
      const auto packet =
          synth.synthesize(std::span<const PathComponent>(&p, 1), 0.0, rng);
      const double ml = ml_aoa(packet.csi, link);
      se_ml += (ml - true_aoa) * (ml - true_aoa);
      const auto me = music.estimate(packet.csi);
      if (!me.empty()) {
        se_music += (me[0].aoa_rad - true_aoa) * (me[0].aoa_rad - true_aoa);
        ++n_music;
      }
      const auto ee = esprit.estimate(packet.csi);
      if (!ee.empty()) {
        se_esprit +=
            (ee[0].aoa_rad - true_aoa) * (ee[0].aoa_rad - true_aoa);
        ++n_esprit;
      }
    }
    const auto bound = single_path_crlb(true_aoa, true_tof, snr_db, link);
    std::printf("%8.1f %10.4f %10.4f %10.4f %10.4f\n", snr_db,
                rad_to_deg(bound.sigma_aoa_rad),
                rad_to_deg(std::sqrt(se_ml / trials)),
                rad_to_deg(std::sqrt(se_music / std::max(n_music, 1))),
                rad_to_deg(std::sqrt(se_esprit / std::max(n_esprit, 1))));
  }
  std::printf("\n# ML tracks the bound; smoothed MUSIC can sit below it "
              "(biased/shrinkage estimator); the bound applies to "
              "unbiased estimators\n");
  return 0;
}
