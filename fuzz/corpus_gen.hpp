// Seed-corpus generation for the ingestion fuzzers, driven by the channel
// simulator so seeds look like real captures: plausible multipath CSI,
// AGC-scaled quantization, real RSSI fields. Shared by the make_corpus
// tool (writes the checked-in corpus under fuzz/corpus/) and the
// fuzz_smoke driver (regenerates the same seeds in memory so the test
// also runs standalone). Everything is seeded — the corpus is
// reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "channel/csi_synthesis.hpp"
#include "channel/faults.hpp"
#include "common/angles.hpp"
#include "common/rng.hpp"
#include "csi/intel5300.hpp"
#include "csi/trace.hpp"

namespace spotfi::fuzz {

using Seed = std::pair<std::string, std::vector<std::uint8_t>>;

inline std::vector<std::uint8_t> to_bytes(const std::ostringstream& os) {
  const std::string s = os.str();
  return {s.begin(), s.end()};
}

inline std::vector<CsiPacket> synthesize_packets(const LinkConfig& link,
                                                 std::size_t n, Rng& rng) {
  const CsiSynthesizer synth(link, ImpairmentConfig{});
  std::vector<PathComponent> paths(2);
  paths[0].aoa_rad = deg_to_rad(20.0);
  paths[0].tof_s = 60e-9;
  paths[0].gain_db = -52.0;
  paths[0].is_direct = true;
  paths[1].aoa_rad = deg_to_rad(-45.0);
  paths[1].tof_s = 110e-9;
  paths[1].gain_db = -60.0;
  return synth.synthesize_burst(paths, n, 0.01, rng);
}

inline std::vector<Seed> csitool_seeds() {
  std::vector<Seed> seeds;
  Rng rng(0xC0117001);

  const auto log_for = [&](const LinkConfig& link, std::size_t n) {
    std::vector<BfeeRecord> records;
    std::uint32_t t = 0;
    for (const auto& p : synthesize_packets(link, n, rng)) {
      records.push_back(make_bfee(p.csi, p.rssi_dbm, t += 10'000));
    }
    std::ostringstream os;
    write_csitool_log(os, records);
    return to_bytes(os);
  };

  LinkConfig link = LinkConfig{};
  seeds.emplace_back("clean-3rx.dat", log_for(link, 24));

  LinkConfig narrow = link;
  narrow.n_antennas = 1;
  seeds.emplace_back("clean-1rx.dat", log_for(narrow, 8));

  // Foreign frames interleaved between bfee records, as real csitool logs
  // contain.
  {
    const auto clean = log_for(link, 6);
    std::vector<std::uint8_t> mixed;
    const std::uint8_t foreign[] = {0x00, 0x05, 0xC1, 0xDE, 0xAD, 0xBE, 0xEF};
    mixed.insert(mixed.end(), foreign, foreign + sizeof(foreign));
    mixed.insert(mixed.end(), clean.begin(), clean.end());
    mixed.insert(mixed.end(), foreign, foreign + sizeof(foreign));
    seeds.emplace_back("foreign-frames.dat", std::move(mixed));
  }

  // Pre-corrupted seeds: give the fuzzer a head start into the
  // resynchronization paths.
  {
    ByteFaultPlan plan;
    plan.bit_flip_prob = 0.2;
    plan.truncate_prob = 0.1;
    plan.garbage_prob = 0.15;
    plan.duplicate_prob = 0.1;
    plan.length_tamper_prob = 0.1;
    Rng corrupt_rng(0xBADBEEF);
    seeds.emplace_back(
        "corrupted.dat",
        corrupt_csitool_log(log_for(link, 16), plan, corrupt_rng));
  }

  seeds.emplace_back("empty.dat", std::vector<std::uint8_t>{});
  seeds.emplace_back("partial-header.dat", std::vector<std::uint8_t>{0x00});
  return seeds;
}

inline std::vector<Seed> trace_seeds() {
  std::vector<Seed> seeds;
  Rng rng(0x7214CE02);

  const auto log_for = [&](const LinkConfig& link, std::size_t n) {
    const auto packets = synthesize_packets(link, n, rng);
    std::ostringstream os;
    write_trace(os, link, packets);
    return to_bytes(os);
  };

  LinkConfig link = LinkConfig{};
  seeds.emplace_back("clean-3ant.spfi", log_for(link, 24));

  LinkConfig small = link;
  small.n_antennas = 2;
  small.n_subcarriers = 16;
  small.subcarrier_spacing_hz = 2.5e6;
  seeds.emplace_back("clean-2ant.spfi", log_for(small, 8));

  {
    ByteFaultPlan plan;
    plan.bit_flip_prob = 0.2;
    plan.truncate_prob = 0.1;
    plan.garbage_prob = 0.15;
    plan.duplicate_prob = 0.1;
    plan.length_tamper_prob = 0.1;
    Rng corrupt_rng(0xBADBEEF);
    seeds.emplace_back("corrupted.spfi",
                       corrupt_trace_log(log_for(link, 16), plan, corrupt_rng));
  }

  // Header-only file, and a header with the magic damaged.
  {
    std::ostringstream os;
    write_trace(os, link, {});
    auto header_only = to_bytes(os);
    seeds.emplace_back("header-only.spfi", header_only);
    auto bad_magic = std::move(header_only);
    bad_magic[0] = 'X';
    seeds.emplace_back("bad-magic.spfi", std::move(bad_magic));
  }
  return seeds;
}

}  // namespace spotfi::fuzz
