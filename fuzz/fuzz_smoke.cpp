// Deterministic fuzz smoke test, registered in the default ctest suite.
//
//   spotfi_fuzz_smoke [corpus-dir] [n-mutations]
//
// Replays every checked-in seed (plus the same seeds regenerated in
// memory, so the test runs even without the corpus directory) through
// both fuzz targets, then drives `n-mutations` seeded mutations of those
// seeds through them: byte flips, truncations, garbage splices, region
// duplications, and framing-field clobbers — the byte-level fault model
// of channel/faults, applied blindly. Any trust-boundary violation
// (escaped exception, unaccounted byte, non-finite accepted record)
// aborts; combined with SPOTFI_SANITIZE this is the acceptance gate the
// libFuzzer targets enforce continuously.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "corpus_gen.hpp"
#include "fuzz_targets.hpp"

namespace {

using spotfi::Rng;
using Target = int (*)(const std::uint8_t*, std::size_t);
using Bytes = std::vector<std::uint8_t>;

std::vector<Bytes> load_dir(const std::filesystem::path& dir) {
  std::vector<Bytes> out;
  if (!std::filesystem::is_directory(dir)) return out;
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());  // deterministic order
  for (const auto& path : files) {
    std::ifstream is(path, std::ios::binary);
    Bytes bytes{std::istreambuf_iterator<char>(is),
                std::istreambuf_iterator<char>()};
    out.push_back(std::move(bytes));
  }
  return out;
}

/// One blind mutation: no knowledge of frame boundaries — unlike the
/// frame-aware ByteFaultPlan corruptions already present in the
/// "corrupted" seeds, these shred structure indiscriminately.
Bytes mutate(const Bytes& seed, Rng& rng) {
  Bytes m = seed;
  const std::size_t edits = 1 + rng.uniform_index(8);
  for (std::size_t e = 0; e < edits; ++e) {
    switch (rng.uniform_index(5)) {
      case 0:  // flip a random bit
        if (!m.empty()) {
          const std::size_t bit = rng.uniform_index(m.size() * 8);
          m[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        }
        break;
      case 1:  // truncate at a random point
        if (!m.empty()) m.resize(rng.uniform_index(m.size()));
        break;
      case 2: {  // splice a garbage run at a random point
        const std::size_t n = 1 + rng.uniform_index(24);
        const std::size_t at = rng.uniform_index(m.size() + 1);
        Bytes garbage(n);
        for (auto& b : garbage) {
          b = static_cast<std::uint8_t>(rng.uniform_index(256));
        }
        m.insert(m.begin() + static_cast<std::ptrdiff_t>(at), garbage.begin(),
                 garbage.end());
        break;
      }
      case 3:  // duplicate a random region
        if (!m.empty()) {
          const std::size_t at = rng.uniform_index(m.size());
          const std::size_t n =
              1 + rng.uniform_index(std::min<std::size_t>(m.size() - at, 64));
          const Bytes region(m.begin() + static_cast<std::ptrdiff_t>(at),
                             m.begin() + static_cast<std::ptrdiff_t>(at + n));
          m.insert(m.begin() + static_cast<std::ptrdiff_t>(at), region.begin(),
                   region.end());
        }
        break;
      case 4:  // clobber a 2-byte field (framing/length/shape bytes)
        if (m.size() >= 2) {
          const std::size_t at = rng.uniform_index(m.size() - 1);
          m[at] = static_cast<std::uint8_t>(rng.uniform_index(256));
          m[at + 1] = static_cast<std::uint8_t>(rng.uniform_index(256));
        }
        break;
    }
  }
  return m;
}

std::size_t run_target(const char* name, Target target,
                       const std::vector<Bytes>& seeds,
                       std::size_t n_mutations, std::uint64_t rng_seed) {
  for (const auto& seed : seeds) {
    target(seed.data(), seed.size());
  }
  Rng rng(rng_seed);
  for (std::size_t i = 0; i < n_mutations; ++i) {
    const Bytes m = mutate(seeds[i % seeds.size()], rng);
    target(m.data(), m.size());
  }
  std::printf("fuzz_smoke[%s]: %zu seeds + %zu mutations, no violations\n",
              name, seeds.size(), n_mutations);
  return seeds.size() + n_mutations;
}

}  // namespace

int main(int argc, char** argv) {
  const std::filesystem::path corpus =
      argc > 1 ? std::filesystem::path(argv[1]) : "fuzz/corpus";
  const std::size_t n_mutations =
      argc > 2 ? static_cast<std::size_t>(std::strtoull(argv[2], nullptr, 10))
               : 10'000;

  // Checked-in corpus plus the in-memory regeneration of the same seeds
  // (keeps the test meaningful when the corpus directory is absent).
  std::vector<Bytes> csitool = load_dir(corpus / "csitool");
  for (auto& [name, bytes] : spotfi::fuzz::csitool_seeds()) {
    csitool.push_back(std::move(bytes));
  }
  std::vector<Bytes> trace = load_dir(corpus / "trace");
  for (auto& [name, bytes] : spotfi::fuzz::trace_seeds()) {
    trace.push_back(std::move(bytes));
  }

  run_target("csitool", spotfi::fuzz::csitool_one_input, csitool, n_mutations,
             0xF022C517);
  run_target("trace", spotfi::fuzz::trace_one_input, trace, n_mutations,
             0xF0227214);
  return 0;
}
