// Fuzz entry points for the two ingestion parsers.
//
// Each target feeds arbitrary bytes through the fail-soft reader and
// aborts on any violation of the ingestion trust boundary's guarantees:
//
//   1. No exception escapes — corrupt input costs records, never throws.
//   2. Every input byte is accounted for: bytes_accepted + bytes_skipped
//      equals the input size.
//   3. The reader makes progress — it can neither hang nor yield more
//      items than bytes.
//   4. Accepted records honor the validated-record contract: RSSI and
//      scaled CSI are computable and finite (the reader is the trust
//      boundary; downstream never re-validates).
//
// The same functions back the libFuzzer executables (built with
// -DSPOTFI_LIBFUZZER under SPOTFI_FUZZ=ON) and the deterministic
// fuzz_smoke ctest, which replays the seed corpus plus thousands of
// seeded mutations on every test run, with any compiler.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spotfi::fuzz {

/// CsitoolReader target. Returns 0; aborts on an invariant violation.
int csitool_one_input(const std::uint8_t* data, std::size_t size);

/// TraceReader target. Returns 0; aborts on an invariant violation.
int trace_one_input(const std::uint8_t* data, std::size_t size);

}  // namespace spotfi::fuzz
