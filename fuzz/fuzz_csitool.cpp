#include "fuzz_targets.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "csi/intel5300.hpp"

namespace spotfi::fuzz {
namespace {

[[noreturn]] void die(const char* invariant) {
  std::fprintf(stderr, "fuzz_csitool: invariant violated: %s\n", invariant);
  std::abort();
}

void check(bool ok, const char* invariant) {
  if (!ok) die(invariant);
}

}  // namespace

int csitool_one_input(const std::uint8_t* data, std::size_t size) {
  try {
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(data), size));
    CsitoolReader reader(is);
    std::size_t yields = 0;
    while (auto item = reader.next()) {
      check(++yields <= size + 1, "reader yielded more items than bytes");
      if (!*item) {
        check(static_cast<std::size_t>(item->error().kind) <
                  kIngestErrorKindCount,
              "error kind out of range");
        continue;
      }
      const BfeeRecord& rec = item->value();
      // Accepted records must satisfy the validated-record contract.
      const double rss = rec.total_rss_dbm();
      check(std::isfinite(rss), "total_rss_dbm not finite");
      const CMatrix scaled = rec.scaled_csi();
      check(scaled.rows() == rec.n_rx && scaled.cols() == 30,
            "scaled CSI shape mismatch");
      for (const auto& v : scaled.flat()) {
        check(std::isfinite(v.real()) && std::isfinite(v.imag()),
              "scaled CSI entry not finite");
      }
      (void)rec.permutation();
    }
    const IngestReport& report = reader.report();
    check(report.bytes_consumed() == size,
          "byte accounting: accepted + skipped != input size");
    check(report.records_recovered <= report.records_accepted,
          "recovered exceeds accepted");
  } catch (...) {
    die("exception escaped the fail-soft reader");
  }
  return 0;
}

}  // namespace spotfi::fuzz

#ifdef SPOTFI_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return spotfi::fuzz::csitool_one_input(data, size);
}
#endif
