#include "fuzz_targets.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

#include "csi/trace.hpp"

namespace spotfi::fuzz {
namespace {

[[noreturn]] void die(const char* invariant) {
  std::fprintf(stderr, "fuzz_trace: invariant violated: %s\n", invariant);
  std::abort();
}

void check(bool ok, const char* invariant) {
  if (!ok) die(invariant);
}

}  // namespace

int trace_one_input(const std::uint8_t* data, std::size_t size) {
  try {
    std::istringstream is(
        std::string(reinterpret_cast<const char*>(data), size));
    TraceReader reader(is);
    if (reader.header_ok()) {
      const LinkConfig& link = reader.link();
      check(std::isfinite(link.carrier_hz) && link.carrier_hz > 0.0,
            "accepted header with bad carrier");
      check(link.n_antennas > 0 && link.n_subcarriers > 0,
            "accepted header with zero shape");
    }
    std::size_t yields = 0;
    while (auto item = reader.next()) {
      check(++yields <= size + 1, "reader yielded more items than bytes");
      if (!*item) {
        check(static_cast<std::size_t>(item->error().kind) <
                  kIngestErrorKindCount,
              "error kind out of range");
        check(item->error().kind != IngestErrorKind::kBadFileHeader ||
                  yields == 1,
              "file-header error after the first yield");
        continue;
      }
      const CsiPacket& packet = item->value();
      check(std::isfinite(packet.timestamp_s), "timestamp not finite");
      check(std::isfinite(packet.rssi_dbm), "RSSI not finite");
      check(packet.csi.rows() == reader.link().n_antennas &&
                packet.csi.cols() == reader.link().n_subcarriers,
            "packet CSI shape disagrees with header");
      bool any_nonzero = false;
      for (const auto& v : packet.csi.flat()) {
        check(std::isfinite(v.real()) && std::isfinite(v.imag()),
              "CSI entry not finite");
        any_nonzero = any_nonzero || v != cplx{};
      }
      check(any_nonzero, "accepted all-zero CSI");
    }
    const IngestReport& report = reader.report();
    check(report.bytes_consumed() == size,
          "byte accounting: accepted + skipped != input size");
    check(report.records_recovered <= report.records_accepted,
          "recovered exceeds accepted");
  } catch (...) {
    die("exception escaped the fail-soft reader");
  }
  return 0;
}

}  // namespace spotfi::fuzz

#ifdef SPOTFI_LIBFUZZER
extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return spotfi::fuzz::trace_one_input(data, size);
}
#endif
