// Writes the fuzzers' seed corpus. Usage:
//
//   spotfi_make_corpus <corpus-dir>
//
// Populates <corpus-dir>/csitool/ and <corpus-dir>/trace/ with
// simulator-generated seeds (see corpus_gen.hpp). Deterministic: the same
// binary always writes byte-identical files, so the checked-in corpus
// under fuzz/corpus/ can be audited by regenerating it.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "corpus_gen.hpp"

namespace {

int write_seeds(const std::filesystem::path& dir,
                const std::vector<spotfi::fuzz::Seed>& seeds) {
  std::filesystem::create_directories(dir);
  for (const auto& [name, bytes] : seeds) {
    std::ofstream os(dir / name, std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    if (!os) {
      std::fprintf(stderr, "make_corpus: cannot write %s\n",
                   (dir / name).c_str());
      return 1;
    }
    std::printf("  %s (%zu bytes)\n", (dir / name).c_str(), bytes.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path root(argv[1]);
  if (write_seeds(root / "csitool", spotfi::fuzz::csitool_seeds()) != 0) {
    return 1;
  }
  if (write_seeds(root / "trace", spotfi::fuzz::trace_seeds()) != 0) {
    return 1;
  }
  return 0;
}
